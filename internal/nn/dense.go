package nn

import (
	"math/rand"

	"vcdl/internal/tensor"
)

// Dense is a fully connected layer: y = xW + b with x of shape [N, in].
type Dense struct {
	In, Out int
	W, B    *tensor.Tensor
	dW, dB  *tensor.Tensor
	x       *tensor.Tensor

	// Reused scratch: the activation output and the backward products.
	// Each is fully overwritten by its Into kernel before use, so reuse
	// is bit-invisible; the outputs are valid until the layer's next
	// forward/backward call, which matches how Network consumes them.
	out, dWprod, dBsum, dx *tensor.Tensor
}

// NewDense creates a Dense layer with zero parameters; call Init (or
// Network.Init) before use.
func NewDense(in, out int) *Dense {
	return &Dense{
		In: in, Out: out,
		W:  tensor.New(in, out),
		B:  tensor.New(out),
		dW: tensor.New(in, out),
		dB: tensor.New(out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// Init implements Layer using He-normal initialization.
func (d *Dense) Init(rng *rand.Rand) {
	d.W.HeNormal(d.In, rng)
	d.B.Zero()
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	d.x = x
	d.out = tensor.EnsureShape(d.out, x.Dim(0), d.Out)
	tensor.MatMulInto(d.out, x, d.W)
	d.out.AddRowVector(d.B)
	return d.out
}

// forwardFused is the Dense→ReLU peephole Network.Forward applies: one
// pass adds the bias, applies the rectifier and records r's mask, in
// exactly the operation order of Forward followed by r.Forward — so the
// result (and r's subsequent Backward) is bit-identical to the unfused
// pair while skipping one full activation-tensor write+read.
func (d *Dense) forwardFused(x *tensor.Tensor, r *ReLU) *tensor.Tensor {
	d.x = x
	d.out = tensor.EnsureShape(d.out, x.Dim(0), d.Out)
	tensor.MatMulInto(d.out, x, d.W)
	mask := r.ensureMask(d.out.Size())
	rows := x.Dim(0)
	for row := 0; row < rows; row++ {
		o := d.out.Data[row*d.Out : (row+1)*d.Out]
		m := mask[row*d.Out : (row+1)*d.Out]
		for j, v := range o {
			v += d.B.Data[j]
			if v > 0 {
				o[j] = v
				m[j] = true
			} else {
				o[j] = 0
				m[j] = false
			}
		}
	}
	return d.out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ grad ; dB += column sums ; dX = grad Wᵀ. The products go
	// through zeroed scratch then AddInPlace — NOT directly into dW/dB —
	// because the two-step form is the accumulation order the historical
	// kernel used and float addition is order-sensitive.
	d.dWprod = tensor.EnsureShape(d.dWprod, d.In, d.Out)
	d.dW.AddInPlace(tensor.MatMulTransAInto(d.dWprod, d.x, grad))
	d.dBsum = tensor.EnsureShape(d.dBsum, d.Out)
	d.dB.AddInPlace(tensor.SumRowsInto(d.dBsum, grad))
	d.dx = tensor.EnsureShape(d.dx, grad.Dim(0), d.In)
	return tensor.MatMulTransBInto(d.dx, grad, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }
