package nn

import (
	"math/rand"

	"vcdl/internal/tensor"
)

// Dense is a fully connected layer: y = xW + b with x of shape [N, in].
type Dense struct {
	In, Out int
	W, B    *tensor.Tensor
	dW, dB  *tensor.Tensor
	x       *tensor.Tensor
}

// NewDense creates a Dense layer with zero parameters; call Init (or
// Network.Init) before use.
func NewDense(in, out int) *Dense {
	return &Dense{
		In: in, Out: out,
		W:  tensor.New(in, out),
		B:  tensor.New(out),
		dW: tensor.New(in, out),
		dB: tensor.New(out),
	}
}

// Name implements Layer.
func (d *Dense) Name() string { return "dense" }

// Init implements Layer using He-normal initialization.
func (d *Dense) Init(rng *rand.Rand) {
	d.W.HeNormal(d.In, rng)
	d.B.Zero()
}

// Forward implements Layer.
func (d *Dense) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	d.x = x
	out := tensor.MatMul(x, d.W)
	out.AddRowVector(d.B)
	return out
}

// Backward implements Layer.
func (d *Dense) Backward(grad *tensor.Tensor) *tensor.Tensor {
	// dW += xᵀ grad ; dB += column sums ; dX = grad Wᵀ
	d.dW.AddInPlace(tensor.MatMulTransA(d.x, grad))
	d.dB.AddInPlace(tensor.SumRows(grad))
	return tensor.MatMulTransB(grad, d.W)
}

// Params implements Layer.
func (d *Dense) Params() []*tensor.Tensor { return []*tensor.Tensor{d.W, d.B} }

// Grads implements Layer.
func (d *Dense) Grads() []*tensor.Tensor { return []*tensor.Tensor{d.dW, d.dB} }
