package nn

import (
	"math"
	"math/rand"
	"testing"

	"vcdl/internal/tensor"
)

func TestSoftmaxCrossEntropyUniformLoss(t *testing.T) {
	// Zero logits → uniform distribution → loss = ln(classes).
	logits := tensor.New(4, 10)
	var sce SoftmaxCrossEntropy
	loss, grad, _ := sce.LossAndGrad(logits, []int{0, 1, 2, 3})
	if math.Abs(loss-math.Log(10)) > 1e-12 {
		t.Fatalf("uniform loss = %v, want ln 10 = %v", loss, math.Log(10))
	}
	// Gradient rows must sum to zero (softmax minus one-hot).
	for i := 0; i < 4; i++ {
		s := 0.0
		for j := 0; j < 10; j++ {
			s += grad.At(i, j)
		}
		if math.Abs(s) > 1e-12 {
			t.Fatalf("grad row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxCrossEntropyNumericalStability(t *testing.T) {
	logits := tensor.FromSlice([]float64{1000, -1000, 0}, 1, 3)
	var sce SoftmaxCrossEntropy
	loss, grad, correct := sce.LossAndGrad(logits, []int{0})
	if math.IsNaN(loss) || math.IsInf(loss, 0) {
		t.Fatalf("loss not finite: %v", loss)
	}
	if !grad.AllFinite() {
		t.Fatal("grad not finite")
	}
	if correct != 1 {
		t.Fatalf("correct = %d, want 1", correct)
	}
}

func TestSoftmaxProbabilitiesSumToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	logits := tensor.New(5, 7)
	logits.RandNormal(0, 5, rng)
	var sce SoftmaxCrossEntropy
	p := sce.Probabilities(logits)
	for i := 0; i < 5; i++ {
		s := 0.0
		for j := 0; j < 7; j++ {
			v := p.At(i, j)
			if v < 0 || v > 1 {
				t.Fatalf("probability out of range: %v", v)
			}
			s += v
		}
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("row %d sums to %v", i, s)
		}
	}
}

func TestSoftmaxBadLabelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range label did not panic")
		}
	}()
	var sce SoftmaxCrossEntropy
	sce.LossAndGrad(tensor.New(1, 3), []int{5})
}

func TestParametersRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	net := NewNetwork(SmallCNNBuilder(3, 8, 8, 10))
	net.Init(rng)
	flat := net.Parameters()
	if len(flat) != net.ParamCount() {
		t.Fatalf("flat length %d != ParamCount %d", len(flat), net.ParamCount())
	}
	net2 := NewNetwork(SmallCNNBuilder(3, 8, 8, 10))
	net2.Init(rand.New(rand.NewSource(999)))
	net2.SetParameters(flat)
	flat2 := net2.Parameters()
	for i := range flat {
		if flat[i] != flat2[i] {
			t.Fatalf("round trip mismatch at %d", i)
		}
	}
}

func TestParametersIncludeBatchNormState(t *testing.T) {
	net := NewNetwork(func() []Layer {
		return []Layer{NewDense(4, 4), NewBatchNorm(4), NewDense(4, 2)}
	})
	net.Init(rand.New(rand.NewSource(1)))
	// Trainable: dense(4*4+4) + bn(4+4) + dense(4*2+2) = 20+8+10 = 38.
	if got := net.TrainableCount(); got != 38 {
		t.Fatalf("TrainableCount = %d, want 38", got)
	}
	// Blob adds running mean+var (8 more).
	if got := net.ParamCount(); got != 46 {
		t.Fatalf("ParamCount = %d, want 46", got)
	}
}

func TestResidualStateIncluded(t *testing.T) {
	net := NewNetwork(func() []Layer {
		return []Layer{NewConv2D(1, 2, 3, 1, 1), preActBlock(2), NewGlobalAvgPool2D(), NewDense(2, 2)}
	})
	net.Init(rand.New(rand.NewSource(1)))
	// The residual body holds two BatchNorms whose running stats (2 feats
	// each → 4 values per BN, 8 total) must be part of the blob.
	if net.ParamCount() != net.TrainableCount()+8 {
		t.Fatalf("ParamCount %d, TrainableCount %d: residual BN state missing",
			net.ParamCount(), net.TrainableCount())
	}
}

func TestSetParametersWrongLengthPanics(t *testing.T) {
	net := NewNetwork(MLPBuilder(3, nil, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("SetParameters with wrong length did not panic")
		}
	}()
	net.SetParameters(make([]float64, 5))
}

func TestCloneIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	net := NewNetwork(MLPBuilder(4, []int{5}, 3))
	net.Init(rng)
	clone := net.Clone()
	p1 := net.Parameters()
	p2 := clone.Parameters()
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("clone parameters differ")
		}
	}
	// Training the clone must not affect the original.
	x, labels := randomBatch(rng, []int{4, 4}, 3)
	clone.ZeroGrads()
	clone.TrainBatch(x, labels)
	for i, g := range clone.GradTensors() {
		if g.Norm2() > 0 {
			// apply a crude update to the clone only
			clone.ParamTensors()[i].Axpy(-0.1, g)
		}
	}
	p1b := net.Parameters()
	for i := range p1 {
		if p1[i] != p1b[i] {
			t.Fatal("training the clone mutated the original")
		}
	}
}

func TestZeroGrads(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	net := NewNetwork(MLPBuilder(4, []int{4}, 2))
	net.Init(rng)
	x, labels := randomBatch(rng, []int{3, 4}, 2)
	net.TrainBatch(x, labels)
	nonzero := false
	for _, g := range net.GradTensors() {
		if g.Norm2() > 0 {
			nonzero = true
		}
	}
	if !nonzero {
		t.Fatal("gradients all zero after TrainBatch")
	}
	net.ZeroGrads()
	for _, g := range net.GradTensors() {
		if g.Norm2() != 0 {
			t.Fatal("ZeroGrads left nonzero gradient")
		}
	}
}

func TestGradAccumulationAcrossBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	net := NewNetwork(MLPBuilder(3, nil, 2))
	net.Init(rng)
	x, labels := randomBatch(rng, []int{2, 3}, 2)
	net.ZeroGrads()
	net.TrainBatch(x, labels)
	g1 := net.Gradients()
	net.TrainBatch(x, labels)
	g2 := net.Gradients()
	for i := range g1 {
		if math.Abs(g2[i]-2*g1[i]) > 1e-12 {
			t.Fatalf("gradients did not accumulate at %d: %v vs 2*%v", i, g2[i], g1[i])
		}
	}
}

func TestEvaluateMatchesEvalBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	net := NewNetwork(MLPBuilder(4, []int{6}, 3))
	net.Init(rng)
	x, labels := randomBatch(rng, []int{10, 4}, 3)
	lossWhole, accWhole := net.Evaluate(x, labels, 0)
	lossBatched, accBatched := net.Evaluate(x, labels, 3)
	if math.Abs(lossWhole-lossBatched) > 1e-9 || math.Abs(accWhole-accBatched) > 1e-9 {
		t.Fatalf("batched evaluate differs: (%v,%v) vs (%v,%v)", lossWhole, accWhole, lossBatched, accBatched)
	}
}

func TestBatchNormNormalizesTrainingBatch(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	bn := NewBatchNorm(3)
	bn.Init(rng)
	x := tensor.New(64, 3)
	x.RandNormal(5, 2, rng)
	out := bn.Forward(x, true)
	for f := 0; f < 3; f++ {
		mean, meanSq := 0.0, 0.0
		for i := 0; i < 64; i++ {
			v := out.At(i, f)
			mean += v
			meanSq += v * v
		}
		mean /= 64
		variance := meanSq/64 - mean*mean
		if math.Abs(mean) > 1e-9 {
			t.Fatalf("feature %d mean %v, want 0", f, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("feature %d variance %v, want 1", f, variance)
		}
	}
}

func TestBatchNormInferenceUsesRunningStats(t *testing.T) {
	rng := rand.New(rand.NewSource(18))
	bn := NewBatchNorm(2)
	bn.Init(rng)
	x := tensor.New(32, 2)
	x.RandNormal(3, 1, rng)
	for i := 0; i < 200; i++ {
		bn.Forward(x, true)
	}
	// Inference on the same distribution should now be ≈ normalized.
	out := bn.Forward(x, false)
	mean := 0.0
	for i := 0; i < 32; i++ {
		mean += out.At(i, 0)
	}
	mean /= 32
	if math.Abs(mean) > 0.1 {
		t.Fatalf("inference mean %v, want ~0", mean)
	}
}

func TestMiniResNetForwardShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	net := NewNetwork(MiniResNetV2Builder(3, 8, 8, 8, 2, 10))
	net.Init(rng)
	x := tensor.New(2, 3, 8, 8)
	x.RandNormal(0, 1, rng)
	logits := net.Forward(x, true)
	if logits.Dim(0) != 2 || logits.Dim(1) != 10 {
		t.Fatalf("logits shape %v, want [2 10]", logits.Shape())
	}
	if !logits.AllFinite() {
		t.Fatal("logits not finite")
	}
}

// TestTrainingReducesLoss is the end-to-end sanity check: a few SGD steps
// on a fixed batch must reduce the loss.
func TestTrainingReducesLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	net := NewNetwork(SmallCNNBuilder(3, 8, 8, 4))
	net.Init(rng)
	x, labels := randomBatch(rng, []int{16, 3, 8, 8}, 4)
	first := lossOf(net, x, labels)
	for step := 0; step < 30; step++ {
		net.ZeroGrads()
		net.TrainBatch(x, labels)
		params, grads := net.ParamTensors(), net.GradTensors()
		for i := range params {
			params[i].Axpy(-0.05, grads[i])
		}
	}
	last := lossOf(net, x, labels)
	if last >= first {
		t.Fatalf("loss did not decrease: %v -> %v", first, last)
	}
	if last > first*0.8 {
		t.Fatalf("loss barely moved: %v -> %v", first, last)
	}
}
