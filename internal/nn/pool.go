package nn

import (
	"fmt"
	"math/rand"

	"vcdl/internal/tensor"
)

// MaxPool2D downsamples NCHW activations with non-overlapping K×K windows
// (stride == K). H and W must be divisible by K.
type MaxPool2D struct {
	K int

	inShape []int
	argmax  []int

	// out/gout are the reused forward/backward outputs: out is fully
	// assigned per call, gout is zeroed before the argmax scatter.
	out, gout *tensor.Tensor
}

// NewMaxPool2D creates a max-pooling layer with window and stride k.
func NewMaxPool2D(k int) *MaxPool2D { return &MaxPool2D{K: k} }

// Name implements Layer.
func (p *MaxPool2D) Name() string { return "maxpool2d" }

// Forward implements Layer.
func (p *MaxPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: MaxPool2D expects NCHW, got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	if h%p.K != 0 || w%p.K != 0 {
		panic(fmt.Sprintf("nn: MaxPool2D input %dx%d not divisible by %d", h, w, p.K))
	}
	oh, ow := h/p.K, w/p.K
	p.inShape = append(p.inShape[:0], n, c, h, w)
	p.out = tensor.EnsureShape(p.out, n, c, oh, ow)
	out := p.out
	if cap(p.argmax) < out.Size() {
		p.argmax = make([]int, out.Size())
	}
	p.argmax = p.argmax[:out.Size()]
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w:]
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				best := plane[oy*p.K*w+ox*p.K]
				bestIdx := oy*p.K*w + ox*p.K
				for ky := 0; ky < p.K; ky++ {
					for kx := 0; kx < p.K; kx++ {
						idx := (oy*p.K+ky)*w + ox*p.K + kx
						if plane[idx] > best {
							best, bestIdx = plane[idx], idx
						}
					}
				}
				o := (i*oh+oy)*ow + ox
				out.Data[o] = best
				p.argmax[o] = i*h*w + bestIdx
			}
		}
	}
	return out
}

// Backward implements Layer.
func (p *MaxPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	p.gout = tensor.EnsureShape(p.gout, p.inShape...)
	out := p.gout
	out.Zero()
	for o, src := range p.argmax {
		out.Data[src] += grad.Data[o]
	}
	return out
}

// Params implements Layer.
func (p *MaxPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *MaxPool2D) Grads() []*tensor.Tensor { return nil }

// Init implements Layer.
func (p *MaxPool2D) Init(*rand.Rand) {}

// GlobalAvgPool2D reduces NCHW activations to [N, C] by averaging each
// channel plane. It is the standard classifier head reduction in ResNets.
type GlobalAvgPool2D struct {
	inShape []int

	// out/gout are the reused forward/backward outputs, fully assigned
	// per call.
	out, gout *tensor.Tensor
}

// NewGlobalAvgPool2D creates a global average pooling layer.
func NewGlobalAvgPool2D() *GlobalAvgPool2D { return &GlobalAvgPool2D{} }

// Name implements Layer.
func (p *GlobalAvgPool2D) Name() string { return "gap2d" }

// Forward implements Layer.
func (p *GlobalAvgPool2D) Forward(x *tensor.Tensor, training bool) *tensor.Tensor {
	if x.Rank() != 4 {
		panic(fmt.Sprintf("nn: GlobalAvgPool2D expects NCHW, got %v", x.Shape()))
	}
	n, c, h, w := x.Dim(0), x.Dim(1), x.Dim(2), x.Dim(3)
	p.inShape = append(p.inShape[:0], n, c, h, w)
	p.out = tensor.EnsureShape(p.out, n, c)
	out := p.out
	hw := float64(h * w)
	for i := 0; i < n*c; i++ {
		plane := x.Data[i*h*w : (i+1)*h*w]
		s := 0.0
		for _, v := range plane {
			s += v
		}
		out.Data[i] = s / hw
	}
	return out
}

// Backward implements Layer.
func (p *GlobalAvgPool2D) Backward(grad *tensor.Tensor) *tensor.Tensor {
	n, c, h, w := p.inShape[0], p.inShape[1], p.inShape[2], p.inShape[3]
	p.gout = tensor.EnsureShape(p.gout, n, c, h, w)
	out := p.gout
	inv := 1.0 / float64(h*w)
	for i := 0; i < n*c; i++ {
		g := grad.Data[i] * inv
		plane := out.Data[i*h*w : (i+1)*h*w]
		for j := range plane {
			plane[j] = g
		}
	}
	return out
}

// Params implements Layer.
func (p *GlobalAvgPool2D) Params() []*tensor.Tensor { return nil }

// Grads implements Layer.
func (p *GlobalAvgPool2D) Grads() []*tensor.Tensor { return nil }

// Init implements Layer.
func (p *GlobalAvgPool2D) Init(*rand.Rand) {}
