package nn

// Model builders. The paper trains a 552-layer ResNetV2 (4.97M parameters)
// on CIFAR-10; the substitution (DESIGN.md §1) scales this to laptop size
// while keeping the architectural family: a pre-activation residual CNN
// with batch norm, global average pooling and a dense softmax head.

// MLPBuilder returns a builder for a multilayer perceptron with the given
// hidden widths.
func MLPBuilder(in int, hidden []int, classes int) func() []Layer {
	return func() []Layer {
		var ls []Layer
		prev := in
		for _, h := range hidden {
			ls = append(ls, NewDense(prev, h), NewReLU())
			prev = h
		}
		ls = append(ls, NewDense(prev, classes))
		return ls
	}
}

// SmallCNNBuilder returns a compact conv net for [N, c, h, w] inputs:
// two conv+BN+ReLU+pool stages followed by a dense head. h and w must be
// divisible by 4.
func SmallCNNBuilder(c, h, w, classes int) func() []Layer {
	return func() []Layer {
		return []Layer{
			NewConv2D(c, 8, 3, 1, 1),
			NewBatchNorm(8),
			NewReLU(),
			NewMaxPool2D(2),
			NewConv2D(8, 16, 3, 1, 1),
			NewBatchNorm(16),
			NewReLU(),
			NewMaxPool2D(2),
			NewFlatten(),
			NewDense(16*(h/4)*(w/4), classes),
		}
	}
}

// preActBlock builds one pre-activation residual block (BN→ReLU→Conv ×2),
// the ResNetV2 pattern of He et al. used by the paper's model.
func preActBlock(ch int) Layer {
	return NewResidual(
		NewBatchNorm(ch),
		NewReLU(),
		NewConv2D(ch, ch, 3, 1, 1),
		NewBatchNorm(ch),
		NewReLU(),
		NewConv2D(ch, ch, 3, 1, 1),
	)
}

// MiniResNetV2Builder returns a scaled-down ResNetV2: a conv stem, `blocks`
// pre-activation residual blocks at constant width, global average pooling
// and a dense classifier. Inputs are [N, c, h, w].
func MiniResNetV2Builder(c, h, w, width, blocks, classes int) func() []Layer {
	return func() []Layer {
		ls := []Layer{NewConv2D(c, width, 3, 1, 1)}
		for i := 0; i < blocks; i++ {
			ls = append(ls, preActBlock(width))
		}
		ls = append(ls,
			NewBatchNorm(width),
			NewReLU(),
			NewGlobalAvgPool2D(),
			NewDense(width, classes),
		)
		return ls
	}
}
