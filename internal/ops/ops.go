// Package ops is the runtime operations control plane: one shared core
// of fleet actions (list, cordon, drain, kill, rejoin, policy swap, PS
// resize, pacing tune, Byzantine toggle, snapshot) reachable three ways
// — the HTTP admin API mounted on the live server mux (/ops/...), the
// interactive `vcdl-scenario ops` CLI that drives that API over the
// wire, and scenario events, which the engine routes through the same
// Core. The Core wraps an engine target (*live.Fleet or *vcsim.Sim)
// behind capability interfaces, delegates every action to the existing
// plumbing (boinc.ClientControl, live.Fleet churn, ps.Group.Resize) and
// counts it in the vcdl_ops_* metric families. Counting is passive
// under the non-perturbation contract: wrapping a simulator in a Core
// never changes its golden trace.
package ops

import (
	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/obs"
)

// Target is the minimum surface an engine must expose to be operated.
type Target interface {
	ActiveClients() []string
}

// Churner is fleet-membership churn: join, abrupt kill (single or LIFO).
type Churner interface {
	AddClient(inst cloud.InstanceType, region cloud.Region) string
	RemoveClients(n int) []string
	RemoveClient(id string) bool
}

// Slower is straggler injection.
type Slower interface {
	SlowClient(id string, factor float64) bool
	SlowClientAt(i int, factor float64) (string, bool)
}

// Shaper is fleet-wide environment shaping: preemption storms, regional
// latency incidents, and the topology quantities the scenario narrative
// reports.
type Shaper interface {
	SetPreemptProb(p float64)
	PreemptModel(p float64) cloud.PreemptModel
	FleetShape() (subtasks, tasksPerClient int)
	SetRegionRTT(region cloud.Region, rtt float64)
	ClearRegionRTT(region cloud.Region)
}

// Tuner is scheduler tuning: result deadline and retry reliability gate.
type Tuner interface {
	SetTimeout(seconds float64)
	SetReliabilityFloor(floor float64)
}

// PSResizer is parameter-server pool control.
type PSResizer interface {
	PServers() int
	SetPServers(n int)
}

// PolicySwapper is scheduler-policy hot swap.
type PolicySwapper interface {
	SetPolicy(p boinc.Policy)
	PolicyName() string
}

// Cordoner quarantines a client (no new work) and releases it again.
type Cordoner interface {
	Cordon(id string, on bool) bool
}

// Byzantiner switches a client's adversarial behavior (see
// boinc.ByzantineBehaviors; "" or "off" restores honesty).
type Byzantiner interface {
	SetByzantine(id, behavior string) bool
}

// Detacher is graceful departure (real engine only).
type Detacher interface {
	DetachClient(id string) bool
	DetachClients(n int) []string
}

// Rejoiner revives departed clients (real engine only).
type Rejoiner interface {
	RejoinClient(id string) bool
	RejoinClients(n int) []string
}

// BlobKiller is data-plane fault injection (real engine only).
type BlobKiller interface {
	SetBlobKill(n int64) bool
}

// Lister provides the rich per-client view for the admin API.
type Lister interface {
	ClientStatus() []ClientStatus
}

// Knower reports whether a client id ever existed, departed or not.
type Knower interface {
	KnownClient(id string) bool
}

// ClientStatus is one client's live state as the ops plane reports it:
// identity and placement, pacing and shaping, and the scheduler's view
// (reliability, in-flight work, sticky-cache size).
type ClientStatus struct {
	ID          string  `json:"id"`
	Instance    string  `json:"instance,omitempty"`
	Region      string  `json:"region,omitempty"`
	Active      bool    `json:"active"`
	Detached    bool    `json:"detached,omitempty"`
	Cordoned    bool    `json:"cordoned,omitempty"`
	Byzantine   string  `json:"byzantine,omitempty"`
	SlowFactor  float64 `json:"slow_factor,omitempty"`
	Slots       int     `json:"slots,omitempty"`
	PaceSeconds float64 `json:"pace_seconds,omitempty"`
	Reliability float64 `json:"reliability"`
	InFlight    int     `json:"in_flight"`
	CachedFiles int     `json:"cached_files"`
}

// Snapshot is the whole-deployment dump the admin API serves.
type Snapshot struct {
	Policy         string         `json:"policy"`
	PServers       int            `json:"pservers"`
	Subtasks       int            `json:"subtasks,omitempty"`
	TasksPerClient int            `json:"tasks_per_client,omitempty"`
	ActiveClients  int            `json:"active_clients"`
	Clients        []ClientStatus `json:"clients"`
}

// Core is the shared ops implementation. It implements the scenario
// engine's full Injector surface (plus the Detacher/Rejoiner/BlobKiller
// capabilities) by delegating to its target, so the scenario engine can
// route every event through a Core, and the HTTP handlers and CLI drive
// the very same methods. Actions are counted per action name in
// vcdl_ops_actions_total; actions that could not apply (unknown client,
// missing capability) count in vcdl_ops_failures_total instead.
type Core struct {
	target   Target
	actions  *obs.CounterVec
	failures *obs.CounterVec
}

// NewCore wraps an engine target. A nil registry still yields a working
// core (counts go to a private registry nobody scrapes).
func NewCore(target Target, reg *obs.Registry) *Core {
	if reg == nil {
		reg = obs.NewRegistry()
	}
	return &Core{
		target:   target,
		actions:  reg.CounterVec("vcdl_ops_actions_total", "ops control-plane actions applied, by action", "action"),
		failures: reg.CounterVec("vcdl_ops_failures_total", "ops control-plane actions that failed to apply, by action", "action"),
	}
}

func (c *Core) count(action string) { c.actions.With(action).Inc() }
func (c *Core) fail(action string)  { c.failures.With(action).Inc() }

// counted wraps a bool outcome with success/failure accounting.
func (c *Core) counted(action string, ok bool) bool {
	if ok {
		c.count(action)
	} else {
		c.fail(action)
	}
	return ok
}

// Target returns the wrapped engine target (for capability probing).
func (c *Core) Target() Target { return c.target }

// ActiveClients lists active client IDs (a pure read; not counted so
// event helpers that resolve #indexes don't inflate action counts).
func (c *Core) ActiveClients() []string { return c.target.ActiveClients() }

// AddClient joins a new client (volunteer churn, flash crowds).
func (c *Core) AddClient(inst cloud.InstanceType, region cloud.Region) string {
	t, ok := c.target.(Churner)
	if !ok {
		c.fail("join")
		return "(engine cannot add clients)"
	}
	c.count("join")
	return t.AddClient(inst, region)
}

// RemoveClients abruptly kills the n most recently joined clients.
func (c *Core) RemoveClients(n int) []string {
	t, ok := c.target.(Churner)
	if !ok {
		c.fail("kill")
		return nil
	}
	gone := t.RemoveClients(n)
	for range gone {
		c.count("kill")
	}
	return gone
}

// RemoveClient abruptly kills one client by ID.
func (c *Core) RemoveClient(id string) bool {
	t, ok := c.target.(Churner)
	return c.counted("kill", ok && t.RemoveClient(id))
}

// SlowClient turns a client into a straggler (factor 1 restores).
func (c *Core) SlowClient(id string, factor float64) bool {
	t, ok := c.target.(Slower)
	return c.counted("slow", ok && t.SlowClient(id, factor))
}

// SlowClientAt slows the i-th active client.
func (c *Core) SlowClientAt(i int, factor float64) (string, bool) {
	t, ok := c.target.(Slower)
	if !ok {
		c.fail("slow")
		return "", false
	}
	id, ok := t.SlowClientAt(i, factor)
	c.counted("slow", ok)
	return id, ok
}

// SetPreemptProb hot-changes the fleet-wide preemption probability.
func (c *Core) SetPreemptProb(p float64) {
	if t, ok := c.target.(Shaper); ok {
		c.count("preempt")
		t.SetPreemptProb(p)
	} else {
		c.fail("preempt")
	}
}

// PreemptModel returns the engine's §IV-E preemption model (pure read).
func (c *Core) PreemptModel(p float64) cloud.PreemptModel {
	if t, ok := c.target.(Shaper); ok {
		return t.PreemptModel(p)
	}
	return cloud.PreemptModel{P: p}
}

// FleetShape reports subtasks-per-epoch and tasks-per-client (pure read).
func (c *Core) FleetShape() (subtasks, tasksPerClient int) {
	if t, ok := c.target.(Shaper); ok {
		return t.FleetShape()
	}
	return 0, 0
}

// SetRegionRTT overrides a region's round-trip latency.
func (c *Core) SetRegionRTT(region cloud.Region, rtt float64) {
	if t, ok := c.target.(Shaper); ok {
		c.count("outage")
		t.SetRegionRTT(region, rtt)
	} else {
		c.fail("outage")
	}
}

// ClearRegionRTT restores a region's static latency.
func (c *Core) ClearRegionRTT(region cloud.Region) {
	if t, ok := c.target.(Shaper); ok {
		c.count("recover")
		t.ClearRegionRTT(region)
	} else {
		c.fail("recover")
	}
}

// PServers returns the parameter-server pool size (pure read).
func (c *Core) PServers() int {
	if t, ok := c.target.(PSResizer); ok {
		return t.PServers()
	}
	return 0
}

// SetPServers resizes the parameter-server pool.
func (c *Core) SetPServers(n int) {
	if t, ok := c.target.(PSResizer); ok {
		c.count("ps-resize")
		t.SetPServers(n)
	} else {
		c.fail("ps-resize")
	}
}

// SetTimeout hot-changes the result deadline (virtual seconds).
func (c *Core) SetTimeout(seconds float64) {
	if t, ok := c.target.(Tuner); ok {
		c.count("tune-timeout")
		t.SetTimeout(seconds)
	} else {
		c.fail("tune-timeout")
	}
}

// SetReliabilityFloor hot-changes the retry reliability gate.
func (c *Core) SetReliabilityFloor(floor float64) {
	if t, ok := c.target.(Tuner); ok {
		c.count("tune-floor")
		t.SetReliabilityFloor(floor)
	} else {
		c.fail("tune-floor")
	}
}

// SetPolicy hot-swaps the scheduler's assignment policy.
func (c *Core) SetPolicy(p boinc.Policy) {
	if t, ok := c.target.(PolicySwapper); ok {
		c.count("policy-swap")
		t.SetPolicy(p)
	} else {
		c.fail("policy-swap")
	}
}

// PolicyName reports the active assignment policy (pure read).
func (c *Core) PolicyName() string {
	if t, ok := c.target.(PolicySwapper); ok {
		return t.PolicyName()
	}
	return ""
}

// Cordon quarantines (on) or releases (off) a client.
func (c *Core) Cordon(id string, on bool) bool {
	action := "cordon"
	if !on {
		action = "uncordon"
	}
	t, ok := c.target.(Cordoner)
	return c.counted(action, ok && t.Cordon(id, on))
}

// SetByzantine switches a client's adversarial behavior.
func (c *Core) SetByzantine(id, behavior string) bool {
	t, ok := c.target.(Byzantiner)
	return c.counted("byzantine", ok && t.SetByzantine(id, behavior))
}

// DetachClient gracefully drains one client (real engine only).
func (c *Core) DetachClient(id string) bool {
	t, ok := c.target.(Detacher)
	return c.counted("drain", ok && t.DetachClient(id))
}

// DetachClients gracefully drains the n most recently joined clients.
func (c *Core) DetachClients(n int) []string {
	t, ok := c.target.(Detacher)
	if !ok {
		c.fail("drain")
		return nil
	}
	gone := t.DetachClients(n)
	for range gone {
		c.count("drain")
	}
	return gone
}

// RejoinClient revives one departed client (real engine only).
func (c *Core) RejoinClient(id string) bool {
	t, ok := c.target.(Rejoiner)
	return c.counted("rejoin", ok && t.RejoinClient(id))
}

// RejoinClients revives the n most recently departed clients.
func (c *Core) RejoinClients(n int) []string {
	t, ok := c.target.(Rejoiner)
	if !ok {
		c.fail("rejoin")
		return nil
	}
	back := t.RejoinClients(n)
	for range back {
		c.count("rejoin")
	}
	return back
}

// SetBlobKill arms/disarms data-plane fault injection (real engine only).
func (c *Core) SetBlobKill(n int64) bool {
	t, ok := c.target.(BlobKiller)
	return c.counted("blob-kill", ok && t.SetBlobKill(n))
}

// KnownClient reports whether a client id ever existed (pure read;
// engines without the capability claim everything is known, so the
// never-existed check stays conservative).
func (c *Core) KnownClient(id string) bool {
	if t, ok := c.target.(Knower); ok {
		return t.KnownClient(id)
	}
	return true
}

// Clients returns the rich per-client listing (falling back to bare IDs
// when the target has no Lister).
func (c *Core) Clients() []ClientStatus {
	c.count("list")
	if l, ok := c.target.(Lister); ok {
		return l.ClientStatus()
	}
	out := []ClientStatus{}
	for _, id := range c.target.ActiveClients() {
		out = append(out, ClientStatus{ID: id, Active: true, Reliability: 1})
	}
	return out
}

// Snapshot dumps the whole deployment state.
func (c *Core) Snapshot() Snapshot {
	c.count("snapshot")
	snap := Snapshot{
		Policy:   c.PolicyName(),
		PServers: c.PServers(),
	}
	snap.Subtasks, snap.TasksPerClient = c.FleetShape()
	if l, ok := c.target.(Lister); ok {
		snap.Clients = l.ClientStatus()
	} else {
		for _, id := range c.target.ActiveClients() {
			snap.Clients = append(snap.Clients, ClientStatus{ID: id, Active: true, Reliability: 1})
		}
	}
	for _, cs := range snap.Clients {
		if cs.Active {
			snap.ActiveClients++
		}
	}
	return snap
}
