package ops

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/obs"
)

// fakeTarget implements every capability and records the calls.
type fakeTarget struct {
	calls     []string
	cordoned  map[string]bool
	byzantine map[string]string
	policy    boinc.Policy
	pservers  int
}

func newFakeTarget() *fakeTarget {
	return &fakeTarget{
		cordoned:  map[string]bool{},
		byzantine: map[string]string{},
		pservers:  2,
	}
}

func (f *fakeTarget) note(s string) { f.calls = append(f.calls, s) }

func (f *fakeTarget) ActiveClients() []string { return []string{"c1", "c2", "c3"} }
func (f *fakeTarget) AddClient(inst cloud.InstanceType, region cloud.Region) string {
	f.note("add")
	return "c4"
}
func (f *fakeTarget) RemoveClients(n int) []string { f.note("removeN"); return []string{"c3", "c2"} }
func (f *fakeTarget) RemoveClient(id string) bool  { f.note("remove " + id); return id != "ghost" }
func (f *fakeTarget) SlowClient(id string, factor float64) bool {
	f.note("slow " + id)
	return id != "ghost"
}
func (f *fakeTarget) SlowClientAt(i int, factor float64) (string, bool) {
	f.note("slowAt")
	return "c1", true
}
func (f *fakeTarget) SetPreemptProb(p float64) { f.note("preempt") }
func (f *fakeTarget) PreemptModel(p float64) cloud.PreemptModel {
	return cloud.PreemptModel{P: p}
}
func (f *fakeTarget) FleetShape() (int, int)                        { return 10, 2 }
func (f *fakeTarget) SetRegionRTT(region cloud.Region, rtt float64) { f.note("rtt") }
func (f *fakeTarget) ClearRegionRTT(region cloud.Region)            { f.note("clear-rtt") }
func (f *fakeTarget) SetTimeout(seconds float64)                    { f.note("timeout") }
func (f *fakeTarget) SetReliabilityFloor(floor float64)             { f.note("floor") }
func (f *fakeTarget) PServers() int                                 { return f.pservers }
func (f *fakeTarget) SetPServers(n int)                             { f.pservers = n }
func (f *fakeTarget) SetPolicy(p boinc.Policy)                      { f.policy = p }
func (f *fakeTarget) PolicyName() string                            { return "paper" }
func (f *fakeTarget) Cordon(id string, on bool) bool {
	if id == "ghost" {
		return false
	}
	f.cordoned[id] = on
	return true
}
func (f *fakeTarget) SetByzantine(id, behavior string) bool {
	if id == "ghost" {
		return false
	}
	f.byzantine[id] = behavior
	return true
}
func (f *fakeTarget) DetachClient(id string) bool  { f.note("detach " + id); return id != "ghost" }
func (f *fakeTarget) DetachClients(n int) []string { return []string{"c3"} }
func (f *fakeTarget) RejoinClient(id string) bool  { f.note("rejoin " + id); return id != "ghost" }
func (f *fakeTarget) RejoinClients(n int) []string { return []string{"c3"} }
func (f *fakeTarget) SetBlobKill(n int64) bool     { return true }
func (f *fakeTarget) KnownClient(id string) bool   { return id != "ghost" }
func (f *fakeTarget) ClientStatus() []ClientStatus {
	return []ClientStatus{
		{ID: "c1", Active: true, Reliability: 1},
		{ID: "c2", Active: true, Reliability: 0.5, Cordoned: f.cordoned["c2"], Byzantine: f.byzantine["c2"]},
		{ID: "c3", Active: false, Reliability: 0.9},
	}
}

// bareTarget has only the required minimum.
type bareTarget struct{}

func (bareTarget) ActiveClients() []string { return []string{"x1"} }

func TestCoreCountsActions(t *testing.T) {
	reg := obs.NewRegistry()
	ft := newFakeTarget()
	c := NewCore(ft, reg)

	if !c.Cordon("c2", true) {
		t.Fatal("cordon c2 should succeed")
	}
	if c.Cordon("ghost", true) {
		t.Fatal("cordon ghost should fail")
	}
	c.SetPolicy(nil)
	c.SetPServers(5)
	if got := c.PServers(); got != 5 {
		t.Fatalf("PServers = %d, want 5", got)
	}
	if !c.SetByzantine("c2", boinc.ByzantineSpoof) {
		t.Fatal("byzantine c2 should succeed")
	}
	c.RemoveClient("c1")
	c.DetachClient("c2")
	c.RejoinClient("c3")
	c.SetTimeout(300)
	c.SetReliabilityFloor(0.4)
	c.SetPreemptProb(0.1)

	want := map[string]int64{
		"cordon": 1, "policy-swap": 1, "ps-resize": 1, "byzantine": 1,
		"kill": 1, "drain": 1, "rejoin": 1,
		"tune-timeout": 1, "tune-floor": 1, "preempt": 1,
	}
	for action, n := range want {
		if got := reg.CounterValue("vcdl_ops_actions_total", action); got != n {
			t.Errorf("actions_total{%s} = %d, want %d", action, got, n)
		}
	}
	if got := reg.CounterValue("vcdl_ops_failures_total", "cordon"); got != 1 {
		t.Errorf("failures_total{cordon} = %d, want 1", got)
	}
}

func TestCoreMissingCapabilities(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewCore(bareTarget{}, reg)

	if c.Cordon("x1", true) {
		t.Error("cordon should fail without Cordoner")
	}
	if c.SetByzantine("x1", boinc.ByzantineSpoof) {
		t.Error("byzantine should fail without Byzantiner")
	}
	if got := c.RemoveClients(2); got != nil {
		t.Errorf("RemoveClients = %v, want nil", got)
	}
	c.SetPServers(3) // no-op, counted as failure
	if got := c.PServers(); got != 0 {
		t.Errorf("PServers = %d, want 0", got)
	}
	if !c.KnownClient("never-heard-of-it") {
		t.Error("KnownClient should be conservative (true) without Knower")
	}
	clients := c.Clients()
	if len(clients) != 1 || clients[0].ID != "x1" {
		t.Errorf("Clients fallback = %+v, want one bare x1 row", clients)
	}
	if got := reg.CounterValue("vcdl_ops_failures_total", "cordon"); got != 1 {
		t.Errorf("failures_total{cordon} = %d, want 1", got)
	}
	if got := reg.CounterValue("vcdl_ops_failures_total", "ps-resize"); got != 1 {
		t.Errorf("failures_total{ps-resize} = %d, want 1", got)
	}
}

func TestHandlerEndpoints(t *testing.T) {
	reg := obs.NewRegistry()
	ft := newFakeTarget()
	srv := httptest.NewServer(NewCore(ft, reg).Handler())
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}
	post := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Post(srv.URL+path, "", nil)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var sb strings.Builder
		if _, err := io.Copy(&sb, resp.Body); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, sb.String()
	}

	if code, body := get("/ops/clients"); code != http.StatusOK {
		t.Fatalf("GET /ops/clients = %d: %s", code, body)
	} else {
		var list []ClientStatus
		if err := json.Unmarshal([]byte(body), &list); err != nil {
			t.Fatalf("clients JSON: %v", err)
		}
		if len(list) != 3 {
			t.Fatalf("clients = %d rows, want 3", len(list))
		}
	}
	if code, body := get("/ops/snapshot"); code != http.StatusOK {
		t.Fatalf("GET /ops/snapshot = %d: %s", code, body)
	} else {
		var snap Snapshot
		if err := json.Unmarshal([]byte(body), &snap); err != nil {
			t.Fatalf("snapshot JSON: %v", err)
		}
		if snap.Policy != "paper" || snap.PServers != 2 || snap.ActiveClients != 2 {
			t.Fatalf("snapshot = %+v", snap)
		}
	}

	for _, tc := range []struct {
		path string
		code int
	}{
		{"/ops/clients/c2/cordon", http.StatusOK},
		{"/ops/clients/c2/uncordon", http.StatusOK},
		{"/ops/clients/c2/drain", http.StatusOK},
		{"/ops/clients/c1/kill", http.StatusOK},
		{"/ops/clients/c3/rejoin", http.StatusOK},
		{"/ops/clients/c1/slow?factor=2.5", http.StatusOK},
		{"/ops/clients/c1/slow", http.StatusBadRequest},
		{"/ops/clients/c2/byzantine?behavior=wrong-result", http.StatusOK},
		{"/ops/clients/c2/byzantine?behavior=nonsense", http.StatusBadRequest},
		{"/ops/clients/ghost/cordon", http.StatusConflict},
		{"/ops/clients/c1/frobnicate", http.StatusNotFound},
		{"/ops/policy?name=random", http.StatusOK},
		{"/ops/policy?name=nonsense", http.StatusBadRequest},
		{"/ops/ps?n=3", http.StatusOK},
		{"/ops/ps?n=zero", http.StatusBadRequest},
		{"/ops/tune?timeout=600&floor=0.4", http.StatusOK},
		{"/ops/tune", http.StatusBadRequest},
		{"/ops/join?inst=clientC", http.StatusOK},
	} {
		if code, body := post(tc.path); code != tc.code {
			t.Errorf("POST %s = %d, want %d: %s", tc.path, code, tc.code, body)
		}
	}

	if ft.byzantine["c2"] != boinc.ByzantineWrongResult {
		t.Errorf("byzantine[c2] = %q, want wrong-result", ft.byzantine["c2"])
	}
	if ft.pservers != 3 {
		t.Errorf("pservers = %d, want 3", ft.pservers)
	}
	if got := reg.CounterValue("vcdl_ops_actions_total", "cordon"); got != 1 {
		t.Errorf("actions_total{cordon} = %d, want 1", got)
	}
	if got := reg.CounterValue("vcdl_ops_actions_total", "list"); got == 0 {
		t.Error("listing via HTTP should count as a list action")
	}
}
