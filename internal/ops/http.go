package ops

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
)

// Handler returns the admin API for this core, with every route under
// /ops/ so it mounts directly on the live server mux:
//
//	GET  /ops/clients                      rich per-client listing
//	GET  /ops/snapshot                     whole-deployment dump
//	POST /ops/clients/{id}/cordon          quarantine (no new work)
//	POST /ops/clients/{id}/uncordon        release quarantine
//	POST /ops/clients/{id}/drain           graceful departure
//	POST /ops/clients/{id}/kill            abrupt departure
//	POST /ops/clients/{id}/rejoin          revive a departed client
//	POST /ops/clients/{id}/slow?factor=F   straggler injection (1 restores)
//	POST /ops/clients/{id}/byzantine?behavior=B   adversarial toggle ("off" restores)
//	POST /ops/join?inst=I&region=R         add a client
//	POST /ops/policy?name=N[&arg=K]        hot-swap scheduler policy
//	POST /ops/ps?n=N                       resize the parameter-server pool
//	POST /ops/tune?timeout=S&floor=F&preempt=P   any subset of knobs
//
// Mutations are POST-only; every applied action lands in
// vcdl_ops_actions_total via the shared core.
func (c *Core) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /ops/clients", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Clients())
	})
	mux.HandleFunc("GET /ops/snapshot", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, c.Snapshot())
	})
	mux.HandleFunc("POST /ops/clients/{id}/{action}", c.handleClientAction)
	mux.HandleFunc("POST /ops/join", func(w http.ResponseWriter, r *http.Request) {
		if _, can := c.target.(Churner); !can {
			c.fail("join")
			httpError(w, http.StatusConflict, "this deployment cannot add clients (volunteers attach on their own)")
			return
		}
		inst, ok := cloud.InstanceByName(r.FormValue("inst"))
		if !ok {
			inst = cloud.ClientB
		}
		region := cloud.Region(r.FormValue("region"))
		id := c.AddClient(inst, region)
		writeJSON(w, map[string]string{"id": id})
	})
	mux.HandleFunc("POST /ops/policy", func(w http.ResponseWriter, r *http.Request) {
		name := r.FormValue("name") // implicit ParseForm
		p, err := boinc.NewPolicy(name, r.Form["arg"]...)
		if err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		c.SetPolicy(p)
		writeJSON(w, map[string]string{"policy": c.PolicyName()})
	})
	mux.HandleFunc("POST /ops/ps", func(w http.ResponseWriter, r *http.Request) {
		n, err := strconv.Atoi(r.FormValue("n"))
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "ps: want n=<positive int>")
			return
		}
		c.SetPServers(n)
		writeJSON(w, map[string]int{"pservers": c.PServers()})
	})
	mux.HandleFunc("POST /ops/tune", func(w http.ResponseWriter, r *http.Request) {
		applied := map[string]float64{}
		if v := r.FormValue("timeout"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f <= 0 {
				httpError(w, http.StatusBadRequest, "tune: timeout must be a positive number of seconds")
				return
			}
			c.SetTimeout(f)
			applied["timeout"] = f
		}
		if v := r.FormValue("floor"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				httpError(w, http.StatusBadRequest, "tune: floor must be in [0,1]")
				return
			}
			c.SetReliabilityFloor(f)
			applied["floor"] = f
		}
		if v := r.FormValue("preempt"); v != "" {
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				httpError(w, http.StatusBadRequest, "tune: preempt must be in [0,1]")
				return
			}
			c.SetPreemptProb(f)
			applied["preempt"] = f
		}
		if len(applied) == 0 {
			httpError(w, http.StatusBadRequest, "tune: want at least one of timeout=, floor=, preempt=")
			return
		}
		writeJSON(w, applied)
	})
	return mux
}

func (c *Core) handleClientAction(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	action := r.PathValue("action")
	var ok bool
	switch action {
	case "cordon":
		ok = c.Cordon(id, true)
	case "uncordon":
		ok = c.Cordon(id, false)
	case "drain":
		ok = c.DetachClient(id)
	case "kill":
		ok = c.RemoveClient(id)
	case "rejoin":
		ok = c.RejoinClient(id)
	case "slow":
		factor, err := strconv.ParseFloat(r.FormValue("factor"), 64)
		if err != nil || factor <= 0 {
			httpError(w, http.StatusBadRequest, "slow: want factor=<positive number>")
			return
		}
		ok = c.SlowClient(id, factor)
	case "byzantine":
		behavior := r.FormValue("behavior")
		if behavior != "" && behavior != "off" && !boinc.ValidByzantine(behavior) {
			httpError(w, http.StatusBadRequest,
				fmt.Sprintf("byzantine: unknown behavior %q (want one of %v, or off)", behavior, boinc.ByzantineBehaviors))
			return
		}
		ok = c.SetByzantine(id, behavior)
	default:
		httpError(w, http.StatusNotFound, fmt.Sprintf("unknown action %q", action))
		return
	}
	if !ok {
		httpError(w, http.StatusConflict, fmt.Sprintf("%s %s: no such client, or action not applicable", action, id))
		return
	}
	writeJSON(w, map[string]string{"client": id, "action": action, "status": "ok"})
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": msg})
}
