package exp

import (
	"testing"

	"vcdl/internal/core"
	"vcdl/internal/data"
)

// tinyRealSetup builds a small quick-workload job with its wire-able
// model spec for real-mode lowering tests.
func tinyRealSetup(t *testing.T) (core.JobConfig, core.ModelSpec, *data.Corpus) {
	t.Helper()
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 300, 120, 120
	dc.Seed = 11
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	job := core.DefaultJobConfig(builder)
	job.Subtasks = 6
	job.MaxEpochs = 2
	job.BatchSize = 25
	job.LocalPasses = 2
	job.LearningRate = 0.01
	job.ValSubset = 100
	job.Seed = 11
	return job, spec, corpus
}

// TestWithRealModeRun lowers one spec onto a live fleet and checks the
// Result comes back in virtual units like a simulator run would.
func TestWithRealModeRun(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	job, spec, corpus := tinyRealSetup(t)
	s, err := New(job, corpus,
		Name("fidelity-real"),
		Topology(2, 3, 2),
		Seed(11),
		WithRealMode(spec),
		RealTimeScale(1.0/600),
	)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 2 {
		t.Fatalf("epochs = %d, want 2", len(res.Curve.Points))
	}
	if res.Hours <= 0 || res.Hours > 24 {
		t.Fatalf("virtual hours = %v, want a plausible virtual duration", res.Hours)
	}
	if res.Issued < 12 {
		t.Fatalf("issued = %d, want >= 12", res.Issued)
	}
	if res.Name != "fidelity-real-real" {
		t.Fatalf("name = %q", res.Name)
	}
}

// TestWithRealModeValidates pins option-time validation.
func TestWithRealModeValidates(t *testing.T) {
	job, _, corpus := tinyRealSetup(t)
	if _, err := New(job, corpus, WithRealMode(core.ModelSpec{})); err == nil {
		t.Fatal("empty model spec accepted")
	}
	if _, err := New(job, corpus, RealTimeScale(0)); err == nil {
		t.Fatal("zero time scale accepted")
	}
}
