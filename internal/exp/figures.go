package exp

import (
	"context"
	"fmt"

	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/metrics"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
	"vcdl/internal/vcsim"
)

// This file expresses the paper's multi-run evaluations as spec sweeps.
// Each FigN helper builds one Spec per run and executes them through
// Sweep, so `cmd/experiments -jobs N` and the benchmarks parallelize the
// grids without touching the per-run code path.

// Fig2Specs builds Figure 2's four configurations (P1C3T2, P1C3T8,
// P3C3T8, P5C5T2 at α = 0.95).
func Fig2Specs(s *PaperSetup) ([]*Spec, error) {
	var specs []*Spec
	for _, c := range []struct{ pn, cn, tn int }{
		{1, 3, 2}, {1, 3, 8}, {3, 3, 8}, {5, 5, 2},
	} {
		spec, err := New(s.Job, s.Corpus,
			Topology(c.pn, c.cn, c.tn),
			Alpha(opt.Constant{V: 0.95}))
		if err != nil {
			return nil, fmt.Errorf("fig2 P%dC%dT%d: %w", c.pn, c.cn, c.tn, err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// Fig2 reproduces Figure 2: validation accuracy vs training time for the
// four distributed configurations.
func Fig2(ctx context.Context, s *PaperSetup, opts ...SweepOption) ([]*Result, error) {
	specs, err := Fig2Specs(s)
	if err != nil {
		return nil, err
	}
	return Sweep(ctx, specs, opts...)
}

// Fig3Row is one curve of Figure 3: training time (hours) for a PnCn
// pair across simultaneous-subtask counts.
type Fig3Row struct {
	Label string
	Tn    []int
	Hours []float64
}

// fig3Groups and fig3Tns define the Figure 3 grid.
var (
	fig3Groups = []struct {
		label  string
		pn, cn int
	}{
		{"P1C3", 1, 3}, {"P3C3", 3, 3}, {"P5C5", 5, 5},
	}
	fig3Tns = []int{2, 4, 8}
)

// Fig3Specs builds the nine-run Figure 3 grid in row-major order.
func Fig3Specs(s *PaperSetup) ([]*Spec, error) {
	var specs []*Spec
	for _, g := range fig3Groups {
		for _, tn := range fig3Tns {
			spec, err := New(s.Job, s.Corpus,
				Topology(g.pn, g.cn, tn),
				Alpha(opt.Constant{V: 0.95}))
			if err != nil {
				return nil, fmt.Errorf("fig3 %sT%d: %w", g.label, tn, err)
			}
			specs = append(specs, spec)
		}
	}
	return specs, nil
}

// Fig3 reproduces Figure 3: total training time for P1C3, P3C3 and P5C5
// at T ∈ {2, 4, 8}, α = 0.95.
func Fig3(ctx context.Context, s *PaperSetup, opts ...SweepOption) ([]Fig3Row, error) {
	specs, err := Fig3Specs(s)
	if err != nil {
		return nil, err
	}
	results, err := Sweep(ctx, specs, opts...)
	if err != nil {
		return nil, err
	}
	var rows []Fig3Row
	for gi, g := range fig3Groups {
		row := Fig3Row{Label: g.label, Tn: fig3Tns}
		for ti := range fig3Tns {
			row.Hours = append(row.Hours, results[gi*len(fig3Tns)+ti].Hours)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// Fig4Specs builds the Figure 4 α sweep on P3C3T4, one spec per variant
// of vcsim.Fig4Variants.
func Fig4Specs(s *PaperSetup) ([]*Spec, error) {
	var specs []*Spec
	for _, v := range vcsim.Fig4Variants() {
		spec, err := New(s.Job, s.Corpus,
			Topology(3, 3, 4),
			Alpha(v.Schedule),
			Name("alpha="+v.Label))
		if err != nil {
			return nil, fmt.Errorf("fig4 alpha=%s: %w", v.Label, err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// Fig4 reproduces Figure 4: the effect of the VC-ASGD hyperparameter on
// P3C3T4, including the per-epoch accuracy range (error bars). Figure 5
// is a zoom of the same data (see ZoomWindow).
func Fig4(ctx context.Context, s *PaperSetup, opts ...SweepOption) ([]*Result, error) {
	specs, err := Fig4Specs(s)
	if err != nil {
		return nil, err
	}
	return Sweep(ctx, specs, opts...)
}

// Fig6Result pairs the distributed run with the single-instance baseline.
type Fig6Result struct {
	DistVal, DistTest     metrics.Series
	SerialVal, SerialTest metrics.Series
}

// Fig6 reproduces Figure 6: distributed P5C5T2 with the Var α schedule
// (validation and test accuracy) against serial single-instance training
// on the server configuration, mapped to virtual time.
func Fig6(s *PaperSetup, serialEpochs int) (*Fig6Result, error) {
	spec, err := New(s.Job, s.Corpus,
		Topology(5, 5, 2),
		Alpha(opt.EpochFraction{}),
		RecordTest())
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	dist, err := Run(spec)
	if err != nil {
		return nil, fmt.Errorf("fig6 distributed: %w", err)
	}
	serialVal, serialTest, err := vcsim.SerialBaseline(s, spec.Config(), serialEpochs)
	if err != nil {
		return nil, fmt.Errorf("fig6: %w", err)
	}
	return &Fig6Result{
		DistVal:    dist.Curve,
		DistTest:   dist.TestCurve,
		SerialVal:  serialVal,
		SerialTest: serialTest,
	}, nil
}

// PreemptGridSpecs builds the §IV-E simulated grid: the P5C5T2 fleet
// under each preemption probability with the paper's 5-minute deadline.
// probs[0] is conventionally 0, the clean baseline.
func PreemptGridSpecs(s *PaperSetup, probs []float64) ([]*Spec, error) {
	var specs []*Spec
	for _, p := range probs {
		spec, err := New(s.Job, s.Corpus,
			Topology(5, 5, 2),
			Alpha(opt.Constant{V: 0.95}),
			Timeout(300),
			Preempt(p),
			Name(fmt.Sprintf("p=%.0f%%", p*100)))
		if err != nil {
			return nil, fmt.Errorf("preempt p=%v: %w", p, err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// PolicyPoint labels one run of the scheduling-policy comparison grid.
type PolicyPoint struct {
	Policy  string
	Preempt float64
}

// SchedPolicySpecs builds the policy-ablation grid: every named
// scheduling policy on the P5C5T2 fleet across the §IV-E preemption
// probabilities with the paper's 5-minute deadline (the same grid
// PreemptGridSpecs sweeps for the default policy). Specs are returned
// row-major (policy-major), one PolicyPoint per spec.
func SchedPolicySpecs(s *PaperSetup, policies []string, probs []float64) ([]*Spec, []PolicyPoint, error) {
	var specs []*Spec
	var points []PolicyPoint
	for _, name := range policies {
		for _, p := range probs {
			spec, err := New(s.Job, s.Corpus,
				Topology(5, 5, 2),
				Alpha(opt.Constant{V: 0.95}),
				Timeout(300),
				Preempt(p),
				WithPolicy(name),
				Name(fmt.Sprintf("%s/p=%.0f%%", name, p*100)))
			if err != nil {
				return nil, nil, fmt.Errorf("schedpolicy %s p=%v: %w", name, p, err)
			}
			specs = append(specs, spec)
			points = append(points, PolicyPoint{Policy: name, Preempt: p})
		}
	}
	return specs, points, nil
}

// AblationSpecs builds the A1 update-rule ablation: each rule on P3C3T4
// under 5% preemption with a 10-minute deadline.
func AblationSpecs(s *PaperSetup) ([]*Spec, error) {
	var specs []*Spec
	for _, rule := range vcsim.AblationRules(s.Job.Subtasks) {
		spec, err := New(s.Job, s.Corpus,
			Topology(3, 3, 4),
			Rule(rule),
			Preempt(0.05),
			Timeout(600),
			Name(rule.Name()))
		if err != nil {
			return nil, fmt.Errorf("ablation %s: %w", rule.Name(), err)
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

// Scale-grid constants: the compute-backend capacity experiment
// (`cmd/experiments -exp scale`) keeps per-client work constant so total
// subtask math grows linearly with the fleet, and replicates every
// subtask so the redundancy the cached backend refunds is on the table.
const (
	// ScaleShardSamples is the per-subtask shard size (subtasks = clients).
	ScaleShardSamples = 16
	// ScaleReplication is the redundancy of every scale-grid workunit.
	ScaleReplication = 4
	// ScaleTasksPerClient gives each client enough slots that all
	// replicas are in flight at once (slots = clients × Tn = copies).
	ScaleTasksPerClient = 4
)

// ScaleWorkload generates the fleet-proportional workload for the scale
// grid: one shard (subtask) per client at ScaleShardSamples samples each,
// a single-channel quick CNN, and a small validation subset so client
// math — not server evaluation — dominates.
func ScaleWorkload(seed int64, clients, epochs int) (core.JobConfig, *data.Corpus, error) {
	if clients < ScaleReplication {
		return core.JobConfig{}, nil, fmt.Errorf("exp: scale fleet %d smaller than replication %d", clients, ScaleReplication)
	}
	dc := data.DefaultSynthConfig()
	dc.C = 1
	dc.NTrain = ScaleShardSamples * clients
	dc.NVal, dc.NTest = 200, 200
	dc.NoiseStd = 0.5
	dc.Seed = seed
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		return core.JobConfig{}, nil, err
	}
	job := core.DefaultJobConfig(nn.SmallCNNBuilder(dc.C, dc.H, dc.W, dc.Classes))
	job.Subtasks = clients
	job.MaxEpochs = epochs
	job.BatchSize = 8
	job.LocalPasses = 2
	job.LearningRate = 0.01
	job.ValSubset = 16
	job.Seed = seed
	return job, corpus, nil
}

// ScalePoint labels one cell of the compute-backend scale grid.
type ScalePoint struct {
	Clients int
	Backend string
	// Workers sizes the parallel pool (0 for inline backends).
	Workers int
}

// ScaleSpec builds one scale-grid cell: the fleet-proportional workload
// on a Cn-client fleet with every subtask issued ScaleReplication times,
// computed by the named backend.
func ScaleSpec(job core.JobConfig, corpus *data.Corpus, pt ScalePoint) (*Spec, error) {
	spec, err := New(job, corpus,
		Topology(4, pt.Clients, ScaleTasksPerClient),
		Replicate(ScaleReplication),
		WithBackend(pt.Backend),
		WithComputeWorkers(pt.Workers),
		Name(fmt.Sprintf("C%d/%s", pt.Clients, core.BackendSpecName(pt.Backend))))
	if err != nil {
		return nil, fmt.Errorf("scale C%d %s: %w", pt.Clients, pt.Backend, err)
	}
	return spec, nil
}

// ScaleBackends is the backend × workers grid each fleet size sweeps:
// the real baseline, the memoized and pooled variants at the benchmark's
// 8 workers, and the subsampled surrogate.
func ScaleBackends() []ScalePoint {
	return []ScalePoint{
		{Backend: "real"},
		{Backend: "cached"},
		{Backend: "parallel", Workers: 8},
		{Backend: "parallel+cached", Workers: 8},
		{Backend: "surrogate"},
	}
}

// ZoomWindow slices a curve to the [loH, hiH] hour window (Figure 5).
func ZoomWindow(series metrics.Series, loH, hiH float64) metrics.Series {
	return vcsim.ZoomWindow(series, loH, hiH)
}

// StoreComparison is the §IV-D store-latency analysis.
type StoreComparison = vcsim.StoreComparison

// CompareStores computes the §IV-D table from the calibrated profiles.
func CompareStores() StoreComparison { return vcsim.CompareStores() }
