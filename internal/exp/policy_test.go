package exp

import (
	"strings"
	"testing"
)

func TestWithPolicyValidatesAtConstruction(t *testing.T) {
	job, corpus := quickWorkload(t, 5, 2)
	if _, err := New(job, corpus, WithPolicy("bogus")); err == nil || !strings.Contains(err.Error(), "unknown policy") {
		t.Fatalf("unknown policy error = %v", err)
	}
	if _, err := New(job, corpus, WithPolicy("random", "not-a-seed")); err == nil {
		t.Fatal("bad policy argument must fail New")
	}
}

func TestWithPolicyLowersPerConfig(t *testing.T) {
	job, corpus := quickWorkload(t, 5, 2)
	spec, err := New(job, corpus, WithPolicy("fifo"))
	if err != nil {
		t.Fatal(err)
	}
	a, b := spec.Config(), spec.Config()
	if a.Policy == nil || a.Policy.Name() != "fifo" {
		t.Fatalf("lowered policy = %v", a.Policy)
	}
	// Like StoreBackend, each lowering gets a private instance so sweep
	// workers never share policy state.
	if a.Policy == b.Policy {
		t.Fatal("two lowerings shared one policy instance")
	}
	// Without the option the simulator default (nil) is kept.
	plain, err := New(job, corpus)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Config().Policy != nil {
		t.Fatal("policy set without WithPolicy")
	}
}

// TestSchedPolicySpecsShape pins the row-major grid layout the
// schedpolicy experiment indexes into.
func TestSchedPolicySpecsShape(t *testing.T) {
	job, corpus := quickWorkload(t, 5, 2)
	s := &PaperSetup{Job: job, Corpus: corpus}
	policies := []string{"paper", "fifo"}
	probs := []float64{0, 0.1}
	specs, points, err := SchedPolicySpecs(s, policies, probs)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 || len(points) != 4 {
		t.Fatalf("got %d specs, %d points, want 4", len(specs), len(points))
	}
	want := []PolicyPoint{{"paper", 0}, {"paper", 0.1}, {"fifo", 0}, {"fifo", 0.1}}
	for i, pt := range points {
		if pt != want[i] {
			t.Fatalf("points[%d] = %+v, want %+v", i, pt, want[i])
		}
		cfg := specs[i].Config()
		if cfg.Policy == nil || cfg.Policy.Name() != pt.Policy {
			t.Fatalf("specs[%d] policy = %v, want %s", i, cfg.Policy, pt.Policy)
		}
		if cfg.PreemptProb != pt.Preempt {
			t.Fatalf("specs[%d] preempt = %v, want %v", i, cfg.PreemptProb, pt.Preempt)
		}
	}
	if _, _, err := SchedPolicySpecs(s, []string{"bogus"}, probs); err == nil {
		t.Fatal("unknown policy must fail spec construction")
	}
}

// TestPolicyChangesAssignmentButKeepsInvariants runs the quick workload
// under two different policies end to end: both must finish every
// epoch (the mechanics guarantee), while the assignment traffic
// differs (the policy actually decides something).
func TestPolicyChangesAssignmentButKeepsInvariants(t *testing.T) {
	if testing.Short() {
		t.Skip("two full simulated runs")
	}
	job, corpus := quickWorkload(t, 9, 2)
	run := func(policy string) *Result {
		t.Helper()
		spec, err := New(job, corpus, Topology(2, 3, 2), Seed(9), WithPolicy(policy))
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(spec)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	paper := run("paper")
	random := run("random")
	if len(paper.Curve.Points) != job.MaxEpochs || len(random.Curve.Points) != job.MaxEpochs {
		t.Fatalf("epochs: paper %d random %d, want %d",
			len(paper.Curve.Points), len(random.Curve.Points), job.MaxEpochs)
	}
	if paper.Issued != random.Issued {
		t.Fatalf("issued differs: %d vs %d (every subtask must still be issued exactly once per completion path)",
			paper.Issued, random.Issued)
	}
	// The random policy scatters shards across clients, so without
	// sticky luck it downloads more bytes than the locality-aware
	// default. Equal traffic would mean the policy was never consulted.
	if paper.BytesDownloaded == random.BytesDownloaded {
		t.Fatal("paper and random policies produced identical download traffic")
	}
}
