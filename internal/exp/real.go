package exp

import (
	"context"
	"fmt"
	"time"

	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/live"
	"vcdl/internal/store"
)

// realWallLimit bounds a real-mode run's wall clock: a wedged live
// fleet fails the run instead of hanging a sweep worker.
const realWallLimit = 2 * time.Minute

// WithRealMode lowers the spec onto a live fleet (internal/live)
// instead of the simulator: an in-process BOINC server plus real HTTP
// client goroutines, paced by the simulator's execution model so the
// Result's virtual times stay comparable (DESIGN.md §9). spec must
// describe the same architecture the job's Builder builds — it is
// published as model.json and every client trains from it. Sweeping
// real-mode specs gives small sim↔real fidelity grids: the same
// workload swept with and without WithRealMode, compared row by row.
func WithRealMode(spec core.ModelSpec) Option {
	return func(s *Spec) error {
		if len(spec.Layers) == 0 {
			return fmt.Errorf("real mode: empty model spec")
		}
		sc := spec
		s.realSpec = &sc
		return nil
	}
}

// RealTimeScale sets real mode's virtual→wall mapping in wall seconds
// per virtual second (default live.DefaultTimeScale, one virtual minute
// per wall second). Smaller is faster and less faithful.
func RealTimeScale(scale float64) Option {
	return func(s *Spec) error {
		if scale <= 0 {
			return fmt.Errorf("real time scale %v <= 0", scale)
		}
		s.realScale = scale
		return nil
	}
}

// runReal executes a real-mode spec on a live fleet.
func runReal(s *Spec) (*Result, error) {
	cfg := s.Config()
	st := cfg.Store
	if st == nil {
		st = store.NewEventual(1, 0, cfg.Seed)
	}
	fleet, err := live.StartFleet(live.FleetConfig{
		Server: live.ServerConfig{
			Job:         cfg.Job,
			Spec:        *s.realSpec,
			Corpus:      cfg.Corpus,
			PServers:    cfg.PServers,
			Store:       st,
			Policy:      cfg.Policy,
			Replication: cfg.Replication,
		},
		Name:               cfg.DisplayName() + "-real",
		Fleet:              cloud.Place(cfg.ClientInstances, cfg.Regions),
		TasksPerClient:     cfg.TasksPerClient,
		BaseSubtaskSeconds: cfg.BaseSubtaskSeconds,
		ThreadsPerTask:     cfg.ThreadsPerTask,
		ContentionExp:      cfg.ContentionExp,
		TimeoutVirtual:     cfg.TimeoutSeconds,
		TimeScale:          s.realScale,
		Preempt:            cfg.PreemptProb,
		Metrics:            cfg.Metrics,
		Trace:              cfg.Trace,
	})
	if err != nil {
		return nil, err
	}
	defer fleet.Close()
	ctx, cancel := context.WithTimeout(context.Background(), realWallLimit)
	defer cancel()
	return fleet.Wait(ctx)
}
