package exp

import (
	"strings"
	"testing"

	"vcdl/internal/baseline"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
	"vcdl/internal/store"
)

// quickWorkload is a seconds-scale job/corpus for exp tests: small CNN,
// few shards, tiny corpus.
func quickWorkload(t testing.TB, seed int64, epochs int) (core.JobConfig, *data.Corpus) {
	t.Helper()
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 300, 100, 100
	dc.NoiseStd = 0.4
	dc.Seed = seed
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	job := core.DefaultJobConfig(nn.SmallCNNBuilder(dc.C, dc.H, dc.W, dc.Classes))
	job.Subtasks = 6
	job.MaxEpochs = epochs
	job.BatchSize = 25
	job.LocalPasses = 1
	job.LearningRate = 0.01
	job.ValSubset = 60
	job.Seed = seed
	return job, corpus
}

func TestOptionsLowerToConfig(t *testing.T) {
	job, corpus := quickWorkload(t, 1, 2)
	rule := baseline.Downpour{Scale: 0.1}
	spec, err := New(job, corpus,
		Name("lowering"),
		Topology(3, 4, 5),
		Alpha(opt.Constant{V: 0.7}),
		Epochs(7),
		Seed(42),
		Preempt(0.25),
		Timeout(123),
		Regions(cloud.USEast, cloud.Europe),
		StoreBackend(func() store.Store { return store.NewStrong() }),
		Rule(rule),
		RecordTest(),
		NoSticky(),
		AutoScalePS(6),
		Warmstart(1),
		WithBackend("parallel+cached"),
		WithComputeWorkers(3),
		Replicate(2),
	)
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config()
	switch {
	case cfg.PServers != 3:
		t.Fatalf("PServers = %d", cfg.PServers)
	case len(cfg.ClientInstances) != 4:
		t.Fatalf("clients = %d", len(cfg.ClientInstances))
	case cfg.TasksPerClient != 5:
		t.Fatalf("TasksPerClient = %d", cfg.TasksPerClient)
	case cfg.Job.Alpha.At(1) != 0.7:
		t.Fatalf("alpha = %v", cfg.Job.Alpha.At(1))
	case cfg.Job.MaxEpochs != 7:
		t.Fatalf("MaxEpochs = %d", cfg.Job.MaxEpochs)
	case cfg.Seed != 42 || cfg.Job.Seed != 42:
		t.Fatalf("seeds = %d/%d", cfg.Seed, cfg.Job.Seed)
	case cfg.PreemptProb != 0.25:
		t.Fatalf("PreemptProb = %v", cfg.PreemptProb)
	case cfg.TimeoutSeconds != 123:
		t.Fatalf("TimeoutSeconds = %v", cfg.TimeoutSeconds)
	case len(cfg.Regions) != 2:
		t.Fatalf("Regions = %v", cfg.Regions)
	case cfg.Store == nil:
		t.Fatal("store not lowered")
	case cfg.Rule == nil:
		t.Fatal("rule not lowered")
	case !cfg.RecordTest || !cfg.DisableSticky || !cfg.AutoScalePS:
		t.Fatal("boolean options not lowered")
	case cfg.MaxPServers != 6:
		t.Fatalf("MaxPServers = %d", cfg.MaxPServers)
	case cfg.Job.WarmstartEpochs != 1:
		t.Fatalf("WarmstartEpochs = %d", cfg.Job.WarmstartEpochs)
	case cfg.Backend != "parallel+cached":
		t.Fatalf("Backend = %q", cfg.Backend)
	case cfg.ComputeWorkers != 3:
		t.Fatalf("ComputeWorkers = %d", cfg.ComputeWorkers)
	case cfg.Replication != 2:
		t.Fatalf("Replication = %d", cfg.Replication)
	}
	if spec.Name() != "lowering" {
		t.Fatalf("Name() = %q", spec.Name())
	}
	// The store factory must hand each lowering a private instance, so
	// sweep workers never share a mutable backend.
	if again := spec.Config(); again.Store == cfg.Store {
		t.Fatal("two lowerings share one store instance")
	}
}

func TestSpecConfigIsACopy(t *testing.T) {
	job, corpus := quickWorkload(t, 1, 2)
	spec, err := New(job, corpus, Topology(1, 2, 2), Regions(cloud.USEast))
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config()
	cfg.ClientInstances[0] = cloud.ClientD
	cfg.Regions[0] = cloud.Europe
	cfg.PServers = 99
	fresh := spec.Config()
	if fresh.ClientInstances[0] == cloud.ClientD || fresh.Regions[0] == cloud.Europe || fresh.PServers == 99 {
		t.Fatal("Config() must return an independent copy")
	}
}

func TestOptionValidation(t *testing.T) {
	job, corpus := quickWorkload(t, 1, 2)
	cases := []struct {
		name string
		opts []Option
		want string
	}{
		{"bad topology", []Option{Topology(0, 3, 2)}, "topology"},
		{"bad preempt", []Option{Preempt(1.5)}, "preempt"},
		{"bad timeout", []Option{Timeout(0)}, "timeout"},
		{"nil alpha", []Option{Alpha(nil)}, "alpha"},
		{"bad epochs", []Option{Epochs(0)}, "epochs"},
		{"empty fleet", []Option{Fleet()}, "fleet"},
		{"nil observer", []Option{Observe(nil)}, "observer"},
		{"autoscale cap below pool", []Option{Topology(4, 3, 2), AutoScalePS(2)}, "MaxPServers"},
		{"unknown backend", []Option{WithBackend("bogus")}, "backend"},
		{"negative compute workers", []Option{WithComputeWorkers(-1)}, "workers"},
		{"bad replication", []Option{Replicate(0)}, "replication"},
	}
	for _, tc := range cases {
		if _, err := New(job, corpus, tc.opts...); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: err = %v, want mention of %q", tc.name, err, tc.want)
		}
	}
	if _, err := New(job, nil); err == nil {
		t.Error("nil corpus accepted")
	}
	bad := job
	bad.Subtasks = 0
	if _, err := New(bad, corpus); err == nil {
		t.Error("invalid job accepted")
	}
}

// TestObserverEvents checks that the observer stream is consistent with
// the final Result: one epoch event per curve point, a finish event
// carrying the returned Result, and (under preemption) preempt/timeout
// events explaining the reissues.
func TestObserverEvents(t *testing.T) {
	job, corpus := quickWorkload(t, 3, 3)
	var epochs, assims, preempts, timeouts, finishes int
	var finished *Result
	counter := ObserverFuncs{
		Epoch:      func(EpochEvent) { epochs++ },
		Assimilate: func(AssimEvent) { assims++ },
		Preempt:    func(PreemptEvent) { preempts++ },
		Timeout:    func(TimeoutEvent) { timeouts++ },
		Finish:     func(r *Result) { finishes++; finished = r },
	}
	spec, err := New(job, corpus,
		Topology(2, 3, 2),
		Preempt(0.3),
		Timeout(240),
		Observe(counter))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if epochs != len(res.Curve.Points) {
		t.Errorf("observed %d epoch events, curve has %d points", epochs, len(res.Curve.Points))
	}
	if finishes != 1 || finished != res {
		t.Errorf("finish fired %d times (result match: %v)", finishes, finished == res)
	}
	// Every epoch needs one assimilation per subtask; reissues add more.
	if assims < len(res.Curve.Points)*job.Subtasks {
		t.Errorf("observed %d assimilations, want >= %d", assims, len(res.Curve.Points)*job.Subtasks)
	}
	if preempts == 0 {
		t.Error("p=0.3 run observed no preemptions")
	}
	if timeouts == 0 || res.Timeouts == 0 {
		t.Errorf("preempted run observed %d timeout sweeps (result says %d timeouts)", timeouts, res.Timeouts)
	}
}

// TestObserverDoesNotChangeResult pins the passivity contract: attaching
// observers must not alter the Result.
func TestObserverDoesNotChangeResult(t *testing.T) {
	job, corpus := quickWorkload(t, 5, 2)
	bare, err := New(job, corpus, Topology(1, 2, 2), Preempt(0.2), Timeout(240))
	if err != nil {
		t.Fatal(err)
	}
	watched, err := New(job, corpus, Topology(1, 2, 2), Preempt(0.2), Timeout(240),
		Observe(ObserverFuncs{}, ObserverFuncs{Epoch: func(EpochEvent) {}}))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(watched)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hours != b.Hours || a.Issued != b.Issued || a.Timeouts != b.Timeouts ||
		a.Curve.FinalValue() != b.Curve.FinalValue() {
		t.Fatalf("observer changed the run: %+v vs %+v", a, b)
	}
}
