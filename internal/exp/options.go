package exp

import (
	"fmt"

	"vcdl/internal/baseline"
	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/obs"
	"vcdl/internal/opt"
	"vcdl/internal/store"
)

// Option configures one aspect of a Spec under construction. Options are
// applied in order; later options win. An option returning an error
// aborts New.
type Option func(*Spec) error

// Name labels the run; results and curves report it instead of the
// default PnCnTn topology string.
func Name(name string) Option {
	return func(s *Spec) error {
		s.name = name
		return nil
	}
}

// Topology sets the paper's PnCnTn shape: pn parameter servers, cn
// round-robin Table-I clients, tn simultaneous subtasks per client.
func Topology(pn, cn, tn int) Option {
	return func(s *Spec) error {
		if pn < 1 || cn < 1 || tn < 1 {
			return fmt.Errorf("topology P%dC%dT%d: all counts must be >= 1", pn, cn, tn)
		}
		s.cfg.PServers = pn
		s.cfg.ClientInstances = cloud.DefaultFleet(cn)
		s.cfg.TasksPerClient = tn
		return nil
	}
}

// Fleet pins the client fleet to explicit instance types, overriding
// Topology's round-robin choice (the client count becomes len(fleet)).
func Fleet(fleet ...cloud.InstanceType) Option {
	return func(s *Spec) error {
		if len(fleet) == 0 {
			return fmt.Errorf("empty fleet")
		}
		s.cfg.ClientInstances = append([]cloud.InstanceType(nil), fleet...)
		return nil
	}
}

// Alpha sets the VC-ASGD hyperparameter schedule.
func Alpha(sched opt.Schedule) Option {
	return func(s *Spec) error {
		if sched == nil {
			return fmt.Errorf("nil alpha schedule")
		}
		s.cfg.Job.Alpha = sched
		return nil
	}
}

// Epochs bounds the run length, overriding the job's MaxEpochs.
func Epochs(n int) Option {
	return func(s *Spec) error {
		if n < 1 {
			return fmt.Errorf("epochs %d < 1", n)
		}
		s.cfg.Job.MaxEpochs = n
		return nil
	}
}

// Seed sets the run seed (engine RNG, model init, shard shuffling).
func Seed(seed int64) Option {
	return func(s *Spec) error {
		s.cfg.Seed = seed
		s.cfg.Job.Seed = seed
		return nil
	}
}

// Preempt sets the per-subtask-execution probability that the client
// instance is reclaimed before uploading (§IV-E's p).
func Preempt(p float64) Option {
	return func(s *Spec) error {
		if p < 0 || p > 1 {
			return fmt.Errorf("preempt probability %v outside [0,1]", p)
		}
		s.cfg.PreemptProb = p
		return nil
	}
}

// Timeout sets the BOINC result deadline in seconds (§IV-E's to).
func Timeout(seconds float64) Option {
	return func(s *Spec) error {
		if seconds <= 0 {
			return fmt.Errorf("timeout %vs <= 0", seconds)
		}
		s.cfg.TimeoutSeconds = seconds
		return nil
	}
}

// Regions spreads the fleet round-robin across geographic regions; every
// transfer then pays the region's round-trip latency (§III-E).
func Regions(regions ...cloud.Region) Option {
	return func(s *Spec) error {
		s.cfg.Regions = append([]cloud.Region(nil), regions...)
		return nil
	}
}

// StoreBackend swaps the store backing the shared server parameter copy
// (nil restores the default eventual store, the paper's Redis choice).
// newStore is a factory, not an instance: stores are mutable and runs
// write them, so every Config lowering calls it to give each run a
// private backend — keeping specs shareable across sweep workers and
// re-runnable without carrying parameter state between runs.
func StoreBackend(newStore func() store.Store) Option {
	return func(s *Spec) error {
		s.newStore = newStore
		return nil
	}
}

// Rule overrides the server update rule for ablations (nil restores
// VC-ASGD via the parameter-server group, the paper path).
func Rule(r baseline.UpdateRule) Option {
	return func(s *Spec) error {
		s.cfg.Rule = r
		return nil
	}
}

// WithPolicy selects the scheduler's assignment policy by registry name
// (boinc.PolicyNames lists the built-ins: paper, fifo, random,
// reliability-weighted, locality-first, deadline-aware). Unknown names
// and bad arguments fail at construction. Like StoreBackend, the policy
// is instantiated per Config lowering so sweep workers never share
// policy state.
func WithPolicy(name string, args ...string) Option {
	return func(s *Spec) error {
		if _, err := boinc.NewPolicy(name, args...); err != nil {
			return err
		}
		s.policyName = name
		s.policyArgs = append([]string(nil), args...)
		return nil
	}
}

// WithBackend selects the compute backend executing subtask math by
// spec (core.BackendNames lists them: real, cached, parallel, surrogate
// and the "+cached" combinations). Unknown specs fail at construction.
// The backend instance itself is created per run inside the simulator,
// so sweep workers never share memoization or pool state.
func WithBackend(spec string) Option {
	return func(s *Spec) error {
		if err := core.ValidateBackendSpec(spec); err != nil {
			return err
		}
		s.cfg.Backend = spec
		return nil
	}
}

// WithComputeWorkers sizes the parallel compute backend's worker pool
// (0 restores the default, GOMAXPROCS). The pool size changes only wall
// clock, never the Result.
func WithComputeWorkers(n int) Option {
	return func(s *Spec) error {
		if n < 0 {
			return fmt.Errorf("compute workers %d < 0", n)
		}
		s.cfg.ComputeWorkers = n
		return nil
	}
}

// Replicate issues n concurrent copies of every subtask (BOINC's
// computational redundancy, §II-C; 1 restores the paper's single copy).
// Only the canonical result assimilates, so curves are unchanged; the
// duplicate math it costs is what the cached backend refunds.
func Replicate(n int) Option {
	return func(s *Spec) error {
		if n < 1 {
			return fmt.Errorf("replication %d < 1", n)
		}
		s.cfg.Replication = n
		return nil
	}
}

// RecordTest also evaluates test accuracy at each epoch (Figure 6).
func RecordTest() Option {
	return func(s *Spec) error {
		s.cfg.RecordTest = true
		return nil
	}
}

// NoSticky disables client-side file caching (the A2 ablation: every
// subtask re-downloads its inputs).
func NoSticky() Option {
	return func(s *Spec) error {
		s.cfg.DisableSticky = true
		return nil
	}
}

// AutoScalePS enables the §III-D dynamic parameter-server pool, capped
// at max processes (0 = the default cap of 8).
func AutoScalePS(max int) Option {
	return func(s *Spec) error {
		if max < 0 {
			return fmt.Errorf("autoscale cap %d < 0", max)
		}
		s.cfg.AutoScalePS = true
		s.cfg.MaxPServers = max
		return nil
	}
}

// Warmstart runs n serial synchronous epochs before distributing
// (§II-B's delayed-gradient mitigation).
func Warmstart(n int) Option {
	return func(s *Spec) error {
		if n < 0 {
			return fmt.Errorf("warmstart epochs %d < 0", n)
		}
		s.cfg.Job.WarmstartEpochs = n
		return nil
	}
}

// Observe attaches observers to the run; they receive events in the
// order given, after any previously attached observers. Observe composes
// with itself and with WithMetrics without callers hand-wrapping
// vcsim.Observers: the spec fans all attached sinks in.
func Observe(observers ...Observer) Option {
	return func(s *Spec) error {
		for _, o := range observers {
			if o == nil {
				return fmt.Errorf("nil observer")
			}
			s.obs = append(s.obs, o)
		}
		return nil
	}
}

// WithMetrics attaches a metrics registry to the run (DESIGN.md §10):
// scheduler lifecycle metrics (vcdl_sched_*) and simulator event
// metrics (vcdl_sim_*), histograms in virtual seconds. The registry
// sink composes with any Observe observers — registry first, then the
// observers in attachment order — and, like them, never perturbs the
// run. In real mode (WithRealMode) the same registry is attached to the
// live server instead, with wall-clock histograms.
func WithMetrics(r *obs.Registry) Option {
	return func(s *Spec) error {
		if r == nil {
			return fmt.Errorf("nil metrics registry")
		}
		s.metrics = r
		return nil
	}
}

// WithTrace attaches a workunit lifecycle tracer to the run. In sim
// mode spans carry the full lifecycle (created → assigned →
// compute_start/end → uploaded → validated → assimilated) in virtual
// seconds; in real mode the scheduler-side kinds are recorded in wall
// seconds.
func WithTrace(t *obs.Tracer) Option {
	return func(s *Spec) error {
		if t == nil {
			return fmt.Errorf("nil tracer")
		}
		s.trace = t
		return nil
	}
}
