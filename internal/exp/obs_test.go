package exp

import (
	"strings"
	"testing"

	"vcdl/internal/obs"
	"vcdl/internal/vcsim"
)

// TestObserverOrdering pins the fan-in contract: observers attached
// across several Observe calls receive every event in attachment order,
// and a WithMetrics registry composes with them (bridge first) without
// the caller hand-wrapping vcsim.Observers.
func TestObserverOrdering(t *testing.T) {
	job, corpus := quickWorkload(t, 7, 2)
	reg := obs.NewRegistry()
	var order []string
	tap := func(name string) Observer {
		return ObserverFuncs{Epoch: func(EpochEvent) { order = append(order, name) }}
	}
	spec, err := New(job, corpus,
		Topology(1, 2, 2),
		Observe(tap("a"), tap("b")),
		WithMetrics(reg),
		Observe(tap("c")))
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	epochs := len(res.Curve.Points)
	if epochs == 0 {
		t.Fatal("run produced no epochs")
	}
	if len(order) != 3*epochs {
		t.Fatalf("delivered %d epoch events across 3 observers, want %d", len(order), 3*epochs)
	}
	for i := 0; i < epochs; i++ {
		if got := strings.Join(order[3*i:3*i+3], ""); got != "abc" {
			t.Fatalf("epoch %d delivered out of order: %q (full: %v)", i, got, order)
		}
	}
	// The registry bridge saw the same stream the observers did.
	if got := reg.CounterValue(vcsim.MetricEpochs); got != int64(epochs) {
		t.Fatalf("%s = %d, want %d", vcsim.MetricEpochs, got, epochs)
	}
	if got := reg.CounterValue(vcsim.MetricAssimilations); got == 0 {
		t.Fatal("metrics bridge observed no assimilations")
	}
}

// TestMetricsAndTraceLowering checks WithMetrics/WithTrace reach the
// simulator config and reject nil attachments.
func TestMetricsAndTraceLowering(t *testing.T) {
	job, corpus := quickWorkload(t, 7, 2)
	reg := obs.NewRegistry()
	tr := obs.NewTracer(nil)
	spec, err := New(job, corpus, WithMetrics(reg), WithTrace(tr))
	if err != nil {
		t.Fatal(err)
	}
	cfg := spec.Config()
	if cfg.Metrics != reg || cfg.Trace != tr {
		t.Fatal("metrics/trace not lowered into vcsim.Config")
	}
	if _, err := New(job, corpus, WithMetrics(nil)); err == nil || !strings.Contains(err.Error(), "registry") {
		t.Fatalf("nil registry accepted: %v", err)
	}
	if _, err := New(job, corpus, WithTrace(nil)); err == nil || !strings.Contains(err.Error(), "tracer") {
		t.Fatalf("nil tracer accepted: %v", err)
	}
}

// TestMetricsDoNotChangeResult extends the passivity contract to the
// observability attachments: a run with a registry and tracer attached
// must produce the identical Result to a bare run.
func TestMetricsDoNotChangeResult(t *testing.T) {
	job, corpus := quickWorkload(t, 9, 2)
	bare, err := New(job, corpus, Topology(1, 2, 2), Preempt(0.2), Timeout(240))
	if err != nil {
		t.Fatal(err)
	}
	instr, err := New(job, corpus, Topology(1, 2, 2), Preempt(0.2), Timeout(240),
		WithMetrics(obs.NewRegistry()), WithTrace(obs.NewTracer(nil)))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Run(bare)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(instr)
	if err != nil {
		t.Fatal(err)
	}
	if a.Hours != b.Hours || a.Issued != b.Issued || a.Reissued != b.Reissued ||
		a.Timeouts != b.Timeouts || a.Curve.FinalValue() != b.Curve.FinalValue() {
		t.Fatalf("instrumentation changed the run: %+v vs %+v", a, b)
	}
}
