package exp

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"testing"

	"vcdl/internal/vcsim"
)

// sweepFixture builds a mixed batch of specs sharing one read-only
// corpus: different seeds, topologies and fault models.
func sweepFixture(t testing.TB) []*Spec {
	t.Helper()
	job, corpus := quickWorkload(t, 1, 2)
	var specs []*Spec
	add := func(opts ...Option) {
		spec, err := New(job, corpus, opts...)
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	add(Topology(1, 2, 2), Seed(1))
	add(Topology(2, 3, 2), Seed(2))
	add(Topology(1, 3, 4), Seed(3), Preempt(0.2), Timeout(240))
	add(Topology(2, 2, 2), Seed(4), NoSticky())
	return specs
}

// marshal renders a Result to bytes for exact comparison.
func marshal(t testing.TB, r *Result) []byte {
	t.Helper()
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestSweepDeterminism is the sweep runner's core contract: for the same
// specs, Sweep with 1, 2 and 8 workers produces byte-identical Results
// to serial vcsim.Run — the worker count never leaks into the outcome.
// Run under -race this also proves the runs share no mutable state.
func TestSweepDeterminism(t *testing.T) {
	specs := sweepFixture(t)

	// Serial ground truth through the simulator's own entry point.
	var want [][]byte
	for _, spec := range specs {
		res, err := vcsim.Run(spec.Config())
		if err != nil {
			t.Fatal(err)
		}
		want = append(want, marshal(t, res))
	}

	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			results, err := Sweep(context.Background(), specs, Workers(workers))
			if err != nil {
				t.Fatal(err)
			}
			if len(results) != len(specs) {
				t.Fatalf("got %d results for %d specs", len(results), len(specs))
			}
			for i, res := range results {
				if got := marshal(t, res); !bytes.Equal(got, want[i]) {
					t.Errorf("run #%d differs from serial vcsim.Run:\nserial: %s\nsweep:  %s", i, want[i], got)
				}
			}
		})
	}
}

func TestSweepReturnsInputOrder(t *testing.T) {
	job, corpus := quickWorkload(t, 1, 1)
	var specs []*Spec
	for i := 0; i < 6; i++ {
		spec, err := New(job, corpus, Topology(1, 2, 2), Seed(int64(i)), Name(fmt.Sprintf("run-%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		specs = append(specs, spec)
	}
	results, err := Sweep(context.Background(), specs, Workers(3))
	if err != nil {
		t.Fatal(err)
	}
	for i, res := range results {
		if want := fmt.Sprintf("run-%d", i); res.Name != want {
			t.Errorf("results[%d].Name = %q, want %q", i, res.Name, want)
		}
	}
}

func TestSweepEmptyAndNil(t *testing.T) {
	results, err := Sweep(context.Background(), nil)
	if err != nil || results != nil {
		t.Fatalf("empty sweep: %v, %v", results, err)
	}
	if _, err := Sweep(context.Background(), []*Spec{nil}); err == nil {
		t.Fatal("nil spec accepted")
	}
}

func TestSweepCancelledContext(t *testing.T) {
	specs := sweepFixture(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	results, err := Sweep(ctx, specs, Workers(2))
	if err != context.Canceled {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The result slice still has one slot per spec, and with a
	// pre-cancelled context no run may have been handed out: every slot
	// must be nil.
	if len(results) != len(specs) {
		t.Fatalf("got %d slots, want %d", len(results), len(specs))
	}
	for i, res := range results {
		if res != nil {
			t.Errorf("slot %d ran despite pre-cancelled context", i)
		}
	}
}
