// Package exp is the composable experiment API over the vcsim simulator
// (DESIGN.md §6). It replaces ad-hoc vcsim.Config struct mutation with
// three pillars:
//
//  1. Functional options: exp.New(job, corpus, exp.Topology(3, 3, 4),
//     exp.Alpha(sched), exp.Preempt(0.05), ...) builds a validated,
//     immutable Spec that lowers to the simulator's internal
//     representation (vcsim.Config).
//  2. Observers: exp.Observe attaches vcsim.Observer sinks that stream
//     epoch/assimilation/preemption/timeout events out of the run while
//     it executes, instead of spelunking the final Result.
//  3. A sweep runner: exp.Sweep executes independent specs on a worker
//     pool sharing the read-only corpus, returning results in input
//     order with per-run determinism preserved (same seed => identical
//     Result regardless of worker count).
//
// The paper's multi-run evaluations (Figures 2-4, the preemption grid,
// the ablations) are expressed on top of these in figures.go.
package exp

import (
	"fmt"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/obs"
	"vcdl/internal/store"
	"vcdl/internal/vcsim"
)

// Facade aliases: callers of the experiment API only import exp, not the
// simulator internals.
type (
	// Result is one run's outcome (vcsim.Result).
	Result = vcsim.Result
	// PaperSetup bundles the corpus and job shared by the paper's runs.
	PaperSetup = vcsim.PaperSetup
	// Observer receives run events; see vcsim.Observer for the contract.
	Observer = vcsim.Observer
	// ObserverFuncs adapts plain functions to Observer.
	ObserverFuncs = vcsim.ObserverFuncs
	// Observers fans events out to several observers.
	Observers = vcsim.Observers
	// AssimEvent, EpochEvent, PreemptEvent and TimeoutEvent are the
	// observer event payloads.
	AssimEvent   = vcsim.AssimEvent
	EpochEvent   = vcsim.EpochEvent
	PreemptEvent = vcsim.PreemptEvent
	TimeoutEvent = vcsim.TimeoutEvent
)

// NewPaperSetup generates the paper workload (see vcsim.NewPaperSetup).
func NewPaperSetup(seed int64, epochs int) (*PaperSetup, error) {
	return vcsim.NewPaperSetup(seed, epochs)
}

// Spec is one validated, immutable experiment specification. Build it
// with New; lower it with Config; run it with Run or Sweep. A Spec is
// safe to share between goroutines — Config hands every caller an
// independent copy of the internal representation.
type Spec struct {
	name string
	cfg  vcsim.Config
	obs  []vcsim.Observer
	// newStore builds a private store backend per Config lowering (see
	// StoreBackend); nil keeps the default eventual store.
	newStore func() store.Store
	// policyName/policyArgs select the scheduling policy (WithPolicy);
	// empty keeps the scheduler's default paper policy. The policy is
	// instantiated per Config lowering so workers never share one.
	policyName string
	policyArgs []string
	// realSpec, when set, lowers the run onto the live fleet instead of
	// the simulator (WithRealMode); realScale is its virtual→wall
	// mapping (0 = live.DefaultTimeScale).
	realSpec  *core.ModelSpec
	realScale float64
	// metrics/trace are the observability attachments (WithMetrics,
	// WithTrace); both lower into vcsim.Config or the live fleet.
	metrics *obs.Registry
	trace   *obs.Tracer
}

// New builds a Spec for running job on corpus. Without options the spec
// is the paper-calibrated P1C3T2 fleet; options adjust topology, fault
// model, backends and instrumentation. The returned Spec is validated
// and immutable.
func New(job core.JobConfig, corpus *data.Corpus, opts ...Option) (*Spec, error) {
	if corpus == nil {
		return nil, fmt.Errorf("exp: nil corpus")
	}
	s := &Spec{cfg: vcsim.DefaultConfig(job, corpus, 1, 3, 2)}
	for _, opt := range opts {
		if err := opt(s); err != nil {
			return nil, fmt.Errorf("exp: %w", err)
		}
	}
	if err := s.validate(); err != nil {
		return nil, fmt.Errorf("exp: %w", err)
	}
	return s, nil
}

// validate holds the cross-option invariants an individual option cannot
// check.
func (s *Spec) validate() error {
	cfg := &s.cfg
	if err := cfg.Job.Validate(); err != nil {
		return err
	}
	switch {
	case len(cfg.ClientInstances) == 0:
		return fmt.Errorf("empty client fleet")
	case cfg.AutoScalePS && cfg.MaxPServers > 0 && cfg.MaxPServers < cfg.PServers:
		return fmt.Errorf("MaxPServers %d < PServers %d", cfg.MaxPServers, cfg.PServers)
	}
	return nil
}

// Name returns the spec's display name ("" when unset; the run then
// reports the PnCnTn topology).
func (s *Spec) Name() string { return s.name }

// Config lowers the spec to the simulator's internal representation. The
// returned value is an independent copy: mutating it (or its slices)
// does not affect the Spec, so specs can be lowered concurrently.
func (s *Spec) Config() vcsim.Config {
	cfg := s.cfg
	cfg.Name = s.name
	cfg.ClientInstances = append([]cloud.InstanceType(nil), s.cfg.ClientInstances...)
	cfg.Regions = append([]cloud.Region(nil), s.cfg.Regions...)
	if s.newStore != nil {
		cfg.Store = s.newStore()
	}
	if s.policyName != "" {
		// Validated at option time; a registry change between then and
		// now is a programming error worth failing loudly on.
		p, err := boinc.NewPolicy(s.policyName, s.policyArgs...)
		if err != nil {
			panic("exp: lowering policy " + s.policyName + ": " + err.Error())
		}
		cfg.Policy = p
	}
	switch len(s.obs) {
	case 0:
	case 1:
		cfg.Observer = s.obs[0]
	default:
		cfg.Observer = vcsim.Observers(append([]vcsim.Observer(nil), s.obs...))
	}
	cfg.Metrics = s.metrics
	cfg.Trace = s.trace
	return cfg
}

// Run executes one spec to completion on the calling goroutine — on
// the simulator, or on a live fleet when the spec carries WithRealMode.
// Errors are returned unwrapped; Sweep (and other callers) add the run
// label.
func Run(s *Spec) (*Result, error) {
	if s == nil {
		return nil, fmt.Errorf("exp: nil spec")
	}
	if s.realSpec != nil {
		return runReal(s)
	}
	return vcsim.Run(s.Config())
}
