package exp

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// SweepOption tunes one Sweep call.
type SweepOption func(*sweepConfig)

type sweepConfig struct {
	workers int
}

// Workers sets the worker-pool size. n < 1 selects the default,
// GOMAXPROCS. The pool size never changes results: runs are independent
// single-threaded event loops, so the same specs produce byte-identical
// Results at any worker count.
func Workers(n int) SweepOption {
	return func(c *sweepConfig) {
		c.workers = n
	}
}

// Sweep executes the specs on a worker pool and returns their results in
// input order. The specs may share a read-only corpus/setup — runs never
// mutate it. Each run keeps the serial determinism contract: Sweep with
// any worker count returns exactly what one-by-one Run calls would.
//
// Cancelling ctx stops handing out new runs (in-flight runs complete)
// and returns the context error; slots of runs that never started are
// nil. A failed run aborts the sweep the same way and reports the first
// error in spec order.
func Sweep(ctx context.Context, specs []*Spec, opts ...SweepOption) ([]*Result, error) {
	sc := sweepConfig{}
	for _, opt := range opts {
		opt(&sc)
	}
	if sc.workers < 1 {
		sc.workers = runtime.GOMAXPROCS(0)
	}
	if sc.workers > len(specs) {
		sc.workers = len(specs)
	}
	for i, s := range specs {
		if s == nil {
			return nil, fmt.Errorf("exp: sweep spec #%d is nil", i)
		}
	}
	if len(specs) == 0 {
		return nil, nil
	}

	results := make([]*Result, len(specs))
	errs := make([]error, len(specs))
	jobs := make(chan int)
	failed := make(chan struct{})
	var failOnce sync.Once
	var wg sync.WaitGroup
	for w := 0; w < sc.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = Run(specs[i])
				if errs[i] != nil {
					failOnce.Do(func() { close(failed) })
				}
			}
		}()
	}
feed:
	for i := range specs {
		// Check cancellation/failure before offering the next run: in the
		// combined select a ready worker and a ready Done channel race
		// uniformly at random, which would keep handing out runs after
		// cancellation about half the time.
		select {
		case <-ctx.Done():
			break feed
		case <-failed:
			break feed
		default:
		}
		select {
		case jobs <- i:
		case <-ctx.Done():
			break feed
		case <-failed:
			break feed
		}
	}
	close(jobs)
	wg.Wait()

	if err := ctx.Err(); err != nil {
		return results, err
	}
	for i, err := range errs {
		if err != nil {
			return results, fmt.Errorf("exp: sweep run #%d (%s): %w", i, specName(specs[i]), err)
		}
	}
	return results, nil
}

// specName labels a spec for sweep errors, matching the name its Result
// would carry.
func specName(s *Spec) string {
	cfg := s.cfg
	cfg.Name = s.name
	return cfg.DisplayName()
}
