package sim

// Server models a processor pool with a fixed number of slots and a FIFO
// queue: jobs request a slot, hold it for a service time, and release it.
// VCDL uses Servers for client vCPU slots and for parameter-server
// assimilation capacity; the queueing delay they introduce is what
// produces the client/server imbalance of the paper's Figure 3.
type Server struct {
	eng   *Engine
	slots int
	busy  int
	queue []*job

	// BusyTime integrates slot-seconds of service for utilization reports.
	BusyTime float64
	// MaxQueue records the deepest backlog observed.
	MaxQueue int
}

type job struct {
	service float64
	done    func()
}

// NewServer creates a pool with the given number of parallel slots.
func NewServer(eng *Engine, slots int) *Server {
	if slots < 1 {
		panic("sim: server needs at least one slot")
	}
	return &Server{eng: eng, slots: slots}
}

// Submit enqueues a job with the given service time; done runs when the
// job completes. Jobs start immediately when a slot is free, otherwise
// they wait FIFO.
func (s *Server) Submit(service float64, done func()) {
	if service < 0 {
		service = 0
	}
	j := &job{service: service, done: done}
	if s.busy < s.slots {
		s.start(j)
		return
	}
	s.queue = append(s.queue, j)
	if len(s.queue) > s.MaxQueue {
		s.MaxQueue = len(s.queue)
	}
}

func (s *Server) start(j *job) {
	s.busy++
	s.BusyTime += j.service
	s.eng.Schedule(j.service, func() {
		s.busy--
		if j.done != nil {
			j.done()
		}
		if len(s.queue) > 0 && s.busy < s.slots {
			next := s.queue[0]
			s.queue = s.queue[1:]
			s.start(next)
		}
	})
}

// Busy returns the number of occupied slots.
func (s *Server) Busy() int { return s.busy }

// QueueLen returns the number of waiting jobs.
func (s *Server) QueueLen() int { return len(s.queue) }

// Slots returns the current parallelism.
func (s *Server) Slots() int { return s.slots }

// SetSlots resizes the pool. Growing starts queued jobs immediately;
// shrinking lets running jobs finish (capacity drains naturally).
func (s *Server) SetSlots(n int) {
	if n < 1 {
		n = 1
	}
	s.slots = n
	for len(s.queue) > 0 && s.busy < s.slots {
		next := s.queue[0]
		s.queue = s.queue[1:]
		s.start(next)
	}
}
