// Package sim is a deterministic discrete-event simulation engine. VCDL
// uses it to run paper-scale experiments — fleets of heterogeneous clients
// training for virtual hours — in milliseconds of wall-clock time while the
// actual gradient mathematics still executes for real inside event
// callbacks (DESIGN.md §4, "virtual time, real math").
package sim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Engine owns a virtual clock and an ordered event queue. It is
// single-threaded: events run one at a time in (time, sequence) order, so
// simulations are fully deterministic for a given seed.
type Engine struct {
	now   float64
	seq   uint64
	queue eventHeap
	rng   *rand.Rand

	executed uint64
}

// NewEngine creates an engine at virtual time zero with a seeded RNG.
func NewEngine(seed int64) *Engine {
	return &Engine{rng: rand.New(rand.NewSource(seed))}
}

// Now returns the current virtual time in seconds.
func (e *Engine) Now() float64 { return e.now }

// NowHours returns the current virtual time in hours, the unit the paper's
// figures use.
func (e *Engine) NowHours() float64 { return e.now / 3600 }

// Rand returns the engine's seeded RNG. All stochastic simulation inputs
// (latency jitter, preemption draws) must come from here to preserve
// determinism.
func (e *Engine) Rand() *rand.Rand { return e.rng }

// Executed returns the number of events processed so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Schedule enqueues fn to run delay seconds from now. Negative delays are
// clamped to zero (run "immediately", after already-queued events at the
// current instant).
func (e *Engine) Schedule(delay float64, fn func()) {
	if fn == nil {
		panic("sim: Schedule with nil callback")
	}
	if delay < 0 {
		delay = 0
	}
	e.seq++
	heap.Push(&e.queue, &event{at: e.now + delay, seq: e.seq, fn: fn})
}

// ScheduleAt enqueues fn at absolute virtual time t (clamped to now).
func (e *Engine) ScheduleAt(t float64, fn func()) {
	e.Schedule(t-e.now, fn)
}

// Step runs the next event, if any, and reports whether one ran.
func (e *Engine) Step() bool {
	if e.queue.Len() == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*event)
	if ev.at < e.now {
		panic(fmt.Sprintf("sim: event at %v scheduled before now %v", ev.at, e.now))
	}
	e.now = ev.at
	e.executed++
	ev.fn()
	return true
}

// Run executes events until the queue drains.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil executes events with timestamps <= t, then advances the clock
// to t (if t is beyond the last event).
func (e *Engine) RunUntil(t float64) {
	for e.queue.Len() > 0 && e.queue[0].at <= t {
		e.Step()
	}
	if t > e.now {
		e.now = t
	}
}

// RunWhile executes events while cond() holds and events remain.
func (e *Engine) RunWhile(cond func() bool) {
	for cond() && e.Step() {
	}
}

// Pending returns the number of queued events.
func (e *Engine) Pending() int { return e.queue.Len() }

// event is one scheduled callback. seq breaks timestamp ties FIFO.
type event struct {
	at  float64
	seq uint64
	fn  func()
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(*event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return ev
}
