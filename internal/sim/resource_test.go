package sim

import "testing"

func TestSetSlotsGrowStartsQueuedJobs(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, 1)
	var done []float64
	for i := 0; i < 4; i++ {
		s.Submit(10, func() { done = append(done, e.Now()) })
	}
	// Grow the pool mid-run: at t=5 add three slots; the three queued jobs
	// start immediately and finish at t=15 while job 1 finishes at t=10.
	e.Schedule(5, func() { s.SetSlots(4) })
	e.Run()
	if len(done) != 4 {
		t.Fatalf("done = %v", done)
	}
	if done[0] != 10 {
		t.Fatalf("first job at %v, want 10", done[0])
	}
	for _, d := range done[1:] {
		if d != 15 {
			t.Fatalf("grown jobs = %v, want 15", done)
		}
	}
	if s.Slots() != 4 {
		t.Fatalf("Slots = %d", s.Slots())
	}
}

func TestSetSlotsShrinkDrains(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, 4)
	count := 0
	for i := 0; i < 8; i++ {
		s.Submit(10, func() { count++ })
	}
	// Shrink to 1 immediately: the 4 running jobs finish, then the
	// remaining 4 run one at a time.
	s.SetSlots(1)
	e.Run()
	if count != 8 {
		t.Fatalf("count = %d", count)
	}
	if e.Now() != 10+4*10 {
		t.Fatalf("makespan = %v, want 50", e.Now())
	}
}

func TestSetSlotsClampsToOne(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, 2)
	s.SetSlots(0)
	if s.Slots() != 1 {
		t.Fatalf("Slots = %d, want 1", s.Slots())
	}
}
