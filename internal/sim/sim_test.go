package sim

import (
	"testing"
	"testing/quick"
)

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine(1)
	var order []int
	e.Schedule(3, func() { order = append(order, 3) })
	e.Schedule(1, func() { order = append(order, 1) })
	e.Schedule(2, func() { order = append(order, 2) })
	e.Run()
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("order = %v", order)
	}
	if e.Now() != 3 {
		t.Fatalf("Now = %v, want 3", e.Now())
	}
}

func TestTieBreakFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.Schedule(5, func() { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("ties not FIFO: %v", order)
		}
	}
}

func TestNestedScheduling(t *testing.T) {
	e := NewEngine(1)
	var times []float64
	e.Schedule(1, func() {
		times = append(times, e.Now())
		e.Schedule(2, func() {
			times = append(times, e.Now())
		})
	})
	e.Run()
	if len(times) != 2 || times[0] != 1 || times[1] != 3 {
		t.Fatalf("times = %v", times)
	}
}

func TestNegativeDelayClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.Schedule(5, func() {
		e.Schedule(-10, func() { ran = true })
	})
	e.Run()
	if !ran {
		t.Fatal("negative-delay event did not run")
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5 (no time travel)", e.Now())
	}
}

func TestNilCallbackPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("nil callback did not panic")
		}
	}()
	e.Schedule(1, nil)
}

func TestRunUntil(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunUntil(5)
	if count != 5 {
		t.Fatalf("count = %d, want 5", count)
	}
	if e.Now() != 5 {
		t.Fatalf("Now = %v, want 5", e.Now())
	}
	if e.Pending() != 5 {
		t.Fatalf("Pending = %d, want 5", e.Pending())
	}
}

func TestRunUntilAdvancesPastLastEvent(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(1, func() {})
	e.RunUntil(100)
	if e.Now() != 100 {
		t.Fatalf("Now = %v, want 100", e.Now())
	}
}

func TestRunWhile(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.Schedule(float64(i), func() { count++ })
	}
	e.RunWhile(func() bool { return count < 3 })
	if count != 3 {
		t.Fatalf("count = %d, want 3", count)
	}
}

func TestScheduleAt(t *testing.T) {
	e := NewEngine(1)
	var at float64
	e.ScheduleAt(7.5, func() { at = e.Now() })
	e.Run()
	if at != 7.5 {
		t.Fatalf("ran at %v, want 7.5", at)
	}
}

func TestNowHours(t *testing.T) {
	e := NewEngine(1)
	e.Schedule(7200, func() {})
	e.Run()
	if e.NowHours() != 2 {
		t.Fatalf("NowHours = %v, want 2", e.NowHours())
	}
}

func TestDeterminism(t *testing.T) {
	run := func() []float64 {
		e := NewEngine(42)
		var stamps []float64
		var recurse func(depth int)
		recurse = func(depth int) {
			stamps = append(stamps, e.Now())
			if depth < 5 {
				e.Schedule(e.Rand().Float64(), func() { recurse(depth + 1) })
				e.Schedule(e.Rand().Float64(), func() { recurse(depth + 1) })
			}
		}
		e.Schedule(0, func() { recurse(0) })
		e.Run()
		return stamps
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("divergence at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestServerSerializesBeyondSlots(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, 2)
	var done []float64
	for i := 0; i < 4; i++ {
		s.Submit(10, func() { done = append(done, e.Now()) })
	}
	e.Run()
	// 2 slots, 4 jobs of 10s: first two at t=10, second two at t=20.
	want := []float64{10, 10, 20, 20}
	if len(done) != 4 {
		t.Fatalf("done = %v", done)
	}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("done = %v, want %v", done, want)
		}
	}
	if s.MaxQueue != 2 {
		t.Fatalf("MaxQueue = %d, want 2", s.MaxQueue)
	}
}

func TestServerUtilization(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, 1)
	s.Submit(5, nil)
	s.Submit(5, nil)
	e.Run()
	if s.BusyTime != 10 {
		t.Fatalf("BusyTime = %v, want 10", s.BusyTime)
	}
	if s.Busy() != 0 || s.QueueLen() != 0 {
		t.Fatal("server not drained")
	}
}

func TestServerZeroServiceJob(t *testing.T) {
	e := NewEngine(1)
	s := NewServer(e, 1)
	ran := false
	s.Submit(0, func() { ran = true })
	e.Run()
	if !ran {
		t.Fatal("zero-service job did not complete")
	}
}

func TestServerNeedsSlotPanics(t *testing.T) {
	e := NewEngine(1)
	defer func() {
		if recover() == nil {
			t.Fatal("NewServer(0) did not panic")
		}
	}()
	NewServer(e, 0)
}

// Property: the virtual clock never goes backwards, for arbitrary delay
// sequences.
func TestClockMonotoneProperty(t *testing.T) {
	f := func(delays []float64) bool {
		e := NewEngine(1)
		prev := 0.0
		ok := true
		for _, d := range delays {
			e.Schedule(d, func() {
				if e.Now() < prev {
					ok = false
				}
				prev = e.Now()
			})
		}
		e.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: a k-slot server completes n identical jobs in
// ceil(n/k)*service time.
func TestServerMakespanProperty(t *testing.T) {
	f := func(nRaw, kRaw uint8) bool {
		n := int(nRaw)%20 + 1
		k := int(kRaw)%5 + 1
		e := NewEngine(1)
		s := NewServer(e, k)
		for i := 0; i < n; i++ {
			s.Submit(7, nil)
		}
		e.Run()
		waves := (n + k - 1) / k
		return e.Now() == float64(waves*7)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
