package wire

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Checkpoint encoding: a fixed header carrying the epoch the snapshot
// closed, followed by the standard compressed, checksummed parameter
// blob. One format serves both durability paths — core's on-disk
// checkpoint files and the PS group's store-backed checkpoints — so a
// file written at SIGTERM and a store value written at epoch close are
// interchangeable.

const ckptMagic = 0x56434B31 // "VCK1"

// EncodeCheckpoint serializes an epoch-stamped parameter snapshot. The
// parameter payload streams directly into the output buffer after the
// checkpoint header — one buffer, no intermediate blob copy.
func EncodeCheckpoint(epoch int, params []float64) ([]byte, error) {
	if epoch < 0 {
		return nil, fmt.Errorf("wire: negative checkpoint epoch %d", epoch)
	}
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], ckptMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(epoch))
	var buf bytes.Buffer
	buf.Write(hdr[:])
	if err := EncodeParamsTo(&buf, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// DecodeCheckpoint reverses EncodeCheckpoint, verifying the embedded
// parameter checksum.
func DecodeCheckpoint(blob []byte) (epoch int, params []float64, err error) {
	if len(blob) < 8 {
		return 0, nil, fmt.Errorf("wire: checkpoint too short (%d bytes)", len(blob))
	}
	if m := binary.LittleEndian.Uint32(blob[0:]); m != ckptMagic {
		return 0, nil, fmt.Errorf("wire: bad checkpoint magic %#x", m)
	}
	epoch = int(binary.LittleEndian.Uint32(blob[4:]))
	params, err = DecodeParams(blob[8:])
	if err != nil {
		return 0, nil, err
	}
	return epoch, params, nil
}
