package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Raw (uncompressed) parameter encoding, used for parameter-store blobs
// where the store's latency model already accounts for byte volume and
// per-update gzip would dominate simulation wall-clock time.

// EncodeRaw serializes a flat parameter vector without compression.
func EncodeRaw(params []float64) []byte {
	out := make([]byte, 8+8*len(params))
	binary.LittleEndian.PutUint64(out[0:], uint64(len(params)))
	for i, v := range params {
		binary.LittleEndian.PutUint64(out[8+8*i:], math.Float64bits(v))
	}
	return out
}

// DecodeRaw reverses EncodeRaw.
func DecodeRaw(blob []byte) ([]float64, error) {
	if len(blob) < 8 {
		return nil, fmt.Errorf("wire: raw blob too short (%d bytes)", len(blob))
	}
	n := int(binary.LittleEndian.Uint64(blob[0:]))
	if len(blob) != 8+8*n {
		return nil, fmt.Errorf("wire: raw blob length %d does not match %d params", len(blob), n)
	}
	params := make([]float64, n)
	for i := range params {
		params[i] = math.Float64frombits(binary.LittleEndian.Uint64(blob[8+8*i:]))
	}
	return params, nil
}
