// Package wire provides the on-the-wire encodings VCDL uses to move model
// parameters and job metadata between clients, the BOINC-style server and
// the parameter stores. Parameter blobs are gzip-compressed with a CRC-32
// integrity check, modelling the paper's compressed .h5 parameter files
// (21.2 MB each for the 4.97M-parameter model) and BOINC's automatic
// file compression feature.
//
// The encode/decode hot path is allocation-pooled: the 32 KiB staging
// chunks and the gzip compressor/decompressor state are recycled through
// sync.Pools, and EncodeParamsTo streams straight into any io.Writer so
// callers composing framed formats (checkpoints, blob publication) never
// pay an intermediate []byte copy of the compressed payload.
package wire

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"sync"
)

const paramMagic = 0x56505231 // "VPR1"

// chunkWords is the number of float64 values staged per chunk; each chunk
// buffer is therefore 32 KiB.
const chunkWords = 4096

// chunkPool recycles the 32 KiB staging buffers used to convert between
// float64 vectors and little-endian bytes. Pointer-to-array (not slice)
// so Put never allocates a slice header.
var chunkPool = sync.Pool{
	New: func() any { return new([8 * chunkWords]byte) },
}

// gzipWriterPool recycles compressor state (the dominant per-call
// allocation: hundreds of KiB of deflate window and hash tables).
// Writers are created at BestSpeed once and rebound to new destinations
// with Reset.
var gzipWriterPool = sync.Pool{
	New: func() any {
		zw, err := gzip.NewWriterLevel(io.Discard, gzip.BestSpeed)
		if err != nil {
			panic(err) // BestSpeed is a valid level; unreachable
		}
		return zw
	},
}

// gzipReaderPool recycles decompressor state. A gzip.Reader cannot be
// constructed without a stream, so the pool starts empty and is seeded
// after first use.
var gzipReaderPool sync.Pool

func getReader(r io.Reader) (*gzip.Reader, error) {
	if zr, ok := gzipReaderPool.Get().(*gzip.Reader); ok {
		if err := zr.Reset(r); err != nil {
			return nil, err
		}
		return zr, nil
	}
	return gzip.NewReader(r)
}

// EncodeParams serializes a flat parameter vector with compression and a
// trailing checksum.
func EncodeParams(params []float64) ([]byte, error) {
	var buf bytes.Buffer
	if err := EncodeParamsTo(&buf, params); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// EncodeParamsTo streams the compressed, checksummed parameter encoding
// into w without materializing the blob. It is the copy-free seam for
// framed formats: write your frame header, then EncodeParamsTo the
// payload into the same writer.
func EncodeParamsTo(w io.Writer, params []float64) error {
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], paramMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(params)))
	if _, err := w.Write(hdr[:]); err != nil {
		return fmt.Errorf("wire: write header: %w", err)
	}
	zw := gzipWriterPool.Get().(*gzip.Writer)
	defer gzipWriterPool.Put(zw)
	zw.Reset(w)
	crc := crc32.NewIEEE()
	mw := io.MultiWriter(zw, crc)
	chunk := chunkPool.Get().(*[8 * chunkWords]byte)
	defer chunkPool.Put(chunk)
	for off := 0; off < len(params); {
		m := len(params) - off
		if m > chunkWords {
			m = chunkWords
		}
		for i := 0; i < m; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(params[off+i]))
		}
		if _, err := mw.Write(chunk[:8*m]); err != nil {
			return fmt.Errorf("wire: write params: %w", err)
		}
		off += m
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := zw.Write(sum[:]); err != nil {
		return fmt.Errorf("wire: write checksum: %w", err)
	}
	if err := zw.Close(); err != nil {
		return fmt.Errorf("wire: close gzip: %w", err)
	}
	return nil
}

// DecodeParams reverses EncodeParams, verifying the checksum.
func DecodeParams(blob []byte) ([]float64, error) {
	if len(blob) < 8 {
		return nil, fmt.Errorf("wire: blob too short (%d bytes)", len(blob))
	}
	if m := binary.LittleEndian.Uint32(blob[0:]); m != paramMagic {
		return nil, fmt.Errorf("wire: bad magic %#x", m)
	}
	n := int(binary.LittleEndian.Uint32(blob[4:]))
	zr, err := getReader(bytes.NewReader(blob[8:]))
	if err != nil {
		return nil, fmt.Errorf("wire: open gzip: %w", err)
	}
	defer gzipReaderPool.Put(zr)
	params := make([]float64, n)
	crc := crc32.NewIEEE()
	chunk := chunkPool.Get().(*[8 * chunkWords]byte)
	defer chunkPool.Put(chunk)
	for off := 0; off < n; {
		m := n - off
		if m > chunkWords {
			m = chunkWords
		}
		if _, err := io.ReadFull(zr, chunk[:8*m]); err != nil {
			return nil, fmt.Errorf("wire: read params: %w", err)
		}
		crc.Write(chunk[:8*m])
		for i := 0; i < m; i++ {
			params[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[8*i:]))
		}
		off += m
	}
	var sum [4]byte
	if _, err := io.ReadFull(zr, sum[:]); err != nil {
		return nil, fmt.Errorf("wire: read checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != crc.Sum32() {
		return nil, fmt.Errorf("wire: checksum mismatch: stored %#x, computed %#x", got, crc.Sum32())
	}
	return params, nil
}

// RawSize returns the uncompressed byte size of a parameter vector of
// length n — the number the latency models use for transfer-time
// estimation.
func RawSize(n int) int { return 8 * n }
