// Package wire provides the on-the-wire encodings VCDL uses to move model
// parameters and job metadata between clients, the BOINC-style server and
// the parameter stores. Parameter blobs are gzip-compressed with a CRC-32
// integrity check, modelling the paper's compressed .h5 parameter files
// (21.2 MB each for the 4.97M-parameter model) and BOINC's automatic
// file compression feature.
package wire

import (
	"bytes"
	"compress/gzip"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

const paramMagic = 0x56505231 // "VPR1"

// EncodeParams serializes a flat parameter vector with compression and a
// trailing checksum.
func EncodeParams(params []float64) ([]byte, error) {
	var buf bytes.Buffer
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], paramMagic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(params)))
	buf.Write(hdr[:])
	zw, err := gzip.NewWriterLevel(&buf, gzip.BestSpeed)
	if err != nil {
		return nil, fmt.Errorf("wire: gzip init: %w", err)
	}
	crc := crc32.NewIEEE()
	w := io.MultiWriter(zw, crc)
	chunk := make([]byte, 8*4096)
	for off := 0; off < len(params); {
		m := len(params) - off
		if m > 4096 {
			m = 4096
		}
		for i := 0; i < m; i++ {
			binary.LittleEndian.PutUint64(chunk[8*i:], math.Float64bits(params[off+i]))
		}
		if _, err := w.Write(chunk[:8*m]); err != nil {
			return nil, fmt.Errorf("wire: write params: %w", err)
		}
		off += m
	}
	var sum [4]byte
	binary.LittleEndian.PutUint32(sum[:], crc.Sum32())
	if _, err := zw.Write(sum[:]); err != nil {
		return nil, fmt.Errorf("wire: write checksum: %w", err)
	}
	if err := zw.Close(); err != nil {
		return nil, fmt.Errorf("wire: close gzip: %w", err)
	}
	return buf.Bytes(), nil
}

// DecodeParams reverses EncodeParams, verifying the checksum.
func DecodeParams(blob []byte) ([]float64, error) {
	if len(blob) < 8 {
		return nil, fmt.Errorf("wire: blob too short (%d bytes)", len(blob))
	}
	if m := binary.LittleEndian.Uint32(blob[0:]); m != paramMagic {
		return nil, fmt.Errorf("wire: bad magic %#x", m)
	}
	n := int(binary.LittleEndian.Uint32(blob[4:]))
	zr, err := gzip.NewReader(bytes.NewReader(blob[8:]))
	if err != nil {
		return nil, fmt.Errorf("wire: open gzip: %w", err)
	}
	defer zr.Close()
	params := make([]float64, n)
	crc := crc32.NewIEEE()
	chunk := make([]byte, 8*4096)
	for off := 0; off < n; {
		m := n - off
		if m > 4096 {
			m = 4096
		}
		if _, err := io.ReadFull(zr, chunk[:8*m]); err != nil {
			return nil, fmt.Errorf("wire: read params: %w", err)
		}
		crc.Write(chunk[:8*m])
		for i := 0; i < m; i++ {
			params[off+i] = math.Float64frombits(binary.LittleEndian.Uint64(chunk[8*i:]))
		}
		off += m
	}
	var sum [4]byte
	if _, err := io.ReadFull(zr, sum[:]); err != nil {
		return nil, fmt.Errorf("wire: read checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(sum[:]); got != crc.Sum32() {
		return nil, fmt.Errorf("wire: checksum mismatch: stored %#x, computed %#x", got, crc.Sum32())
	}
	return params, nil
}

// RawSize returns the uncompressed byte size of a parameter vector of
// length n — the number the latency models use for transfer-time
// estimation.
func RawSize(n int) int { return 8 * n }
