package wire

import (
	"bytes"
	"math"
	"math/rand"
	"sync"
	"testing"
)

// TestEncodeParamsToMatchesEncodeParams pins that the streaming encoder
// and the convenience wrapper produce byte-identical blobs.
func TestEncodeParamsToMatchesEncodeParams(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, n := range []int{0, 1, 4095, 4096, 4097, 50000} {
		params := make([]float64, n)
		for i := range params {
			params[i] = rng.NormFloat64()
		}
		blob, err := EncodeParams(params)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := EncodeParamsTo(&buf, params); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(blob, buf.Bytes()) {
			t.Fatalf("n=%d: streaming and wrapper blobs differ", n)
		}
	}
}

// TestPooledRoundTripConcurrent hammers the chunk/gzip pools from many
// goroutines at once; run with -race, it pins that recycled buffers and
// compressor state are never shared between in-flight calls.
func TestPooledRoundTripConcurrent(t *testing.T) {
	const goroutines = 8
	const iters = 25
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for it := 0; it < iters; it++ {
				n := rng.Intn(3 * chunkWords) // straddle chunk boundaries
				params := make([]float64, n)
				for i := range params {
					params[i] = rng.NormFloat64()
				}
				var back []float64
				var err error
				if it%2 == 0 {
					var blob []byte
					blob, err = EncodeParams(params)
					if err == nil {
						back, err = DecodeParams(blob)
					}
				} else {
					var blob []byte
					blob, err = EncodeCheckpoint(it, params)
					if err == nil {
						var epoch int
						epoch, back, err = DecodeCheckpoint(blob)
						if err == nil && epoch != it {
							t.Errorf("g%d it%d: epoch %d, want %d", g, it, epoch, it)
							return
						}
					}
				}
				if err != nil {
					t.Errorf("g%d it%d: %v", g, it, err)
					return
				}
				if len(back) != n {
					t.Errorf("g%d it%d: len %d, want %d", g, it, len(back), n)
					return
				}
				for i := range params {
					if math.Float64bits(back[i]) != math.Float64bits(params[i]) {
						t.Errorf("g%d it%d: bit mismatch at %d", g, it, i)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// benchParams is sized like a real model shard update: 512k float64s
// (4 MiB raw), incompressible noise so gzip does real work.
func benchParams(n int) []float64 {
	rng := rand.New(rand.NewSource(42))
	params := make([]float64, n)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	return params
}

func BenchmarkParamsRoundTrip(b *testing.B) {
	params := benchParams(64 * 1024)
	b.SetBytes(int64(RawSize(len(params))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob, err := EncodeParams(params)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeParams(blob); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkEncodeCheckpoint(b *testing.B) {
	params := benchParams(64 * 1024)
	b.SetBytes(int64(RawSize(len(params))))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := EncodeCheckpoint(3, params); err != nil {
			b.Fatal(err)
		}
	}
}
