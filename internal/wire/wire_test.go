package wire

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	params := make([]float64, 10000)
	for i := range params {
		params[i] = rng.NormFloat64()
	}
	blob, err := EncodeParams(params)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(params) {
		t.Fatalf("len = %d, want %d", len(back), len(params))
	}
	for i := range params {
		if params[i] != back[i] {
			t.Fatalf("mismatch at %d", i)
		}
	}
}

func TestEmptyParams(t *testing.T) {
	blob, err := EncodeParams(nil)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 0 {
		t.Fatalf("len = %d, want 0", len(back))
	}
}

func TestDecodeTooShort(t *testing.T) {
	if _, err := DecodeParams([]byte{1, 2, 3}); err == nil {
		t.Fatal("short blob should fail")
	}
}

func TestDecodeBadMagic(t *testing.T) {
	blob, err := EncodeParams([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	blob[0] ^= 0xff
	if _, err := DecodeParams(blob); err == nil {
		t.Fatal("bad magic should fail")
	}
}

func TestDecodeCorruptedPayload(t *testing.T) {
	params := make([]float64, 4096)
	for i := range params {
		params[i] = float64(i)
	}
	blob, err := EncodeParams(params)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt a byte in the middle of the compressed stream; either gzip or
	// the CRC must catch it.
	blob[len(blob)/2] ^= 0xff
	if _, err := DecodeParams(blob); err == nil {
		t.Fatal("corrupted payload should fail")
	}
}

func TestDecodeTruncated(t *testing.T) {
	blob, err := EncodeParams(make([]float64, 1000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := DecodeParams(blob[:len(blob)/2]); err == nil {
		t.Fatal("truncated blob should fail")
	}
}

func TestCompressibleParamsShrink(t *testing.T) {
	params := make([]float64, 100000) // all zeros: highly compressible
	blob, err := EncodeParams(params)
	if err != nil {
		t.Fatal(err)
	}
	if len(blob) > RawSize(len(params))/10 {
		t.Fatalf("zero params compressed to %d bytes, want < %d", len(blob), RawSize(len(params))/10)
	}
}

func TestRawSize(t *testing.T) {
	if RawSize(4972746) != 39781968 {
		t.Fatalf("RawSize = %d", RawSize(4972746))
	}
}

func TestSpecialValuesRoundTrip(t *testing.T) {
	params := []float64{0, math.Copysign(0, -1), math.Inf(1), math.Inf(-1), math.MaxFloat64, math.SmallestNonzeroFloat64}
	blob, err := EncodeParams(params)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeParams(blob)
	if err != nil {
		t.Fatal(err)
	}
	for i := range params {
		if math.Float64bits(params[i]) != math.Float64bits(back[i]) {
			t.Fatalf("bit mismatch at %d", i)
		}
	}
}

func TestRoundTripProperty(t *testing.T) {
	f := func(params []float64) bool {
		blob, err := EncodeParams(params)
		if err != nil {
			return false
		}
		back, err := DecodeParams(blob)
		if err != nil {
			return false
		}
		if len(back) != len(params) {
			return false
		}
		for i := range params {
			if math.Float64bits(params[i]) != math.Float64bits(back[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
