package wire

import (
	"math"
	"testing"
)

func TestCheckpointRoundtrip(t *testing.T) {
	params := make([]float64, 1000)
	for i := range params {
		params[i] = math.Sin(float64(i)) * 3.7
	}
	blob, err := EncodeCheckpoint(42, params)
	if err != nil {
		t.Fatal(err)
	}
	epoch, got, err := DecodeCheckpoint(blob)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 42 {
		t.Fatalf("epoch = %d, want 42", epoch)
	}
	if len(got) != len(params) {
		t.Fatalf("len = %d, want %d", len(got), len(params))
	}
	for i := range got {
		if got[i] != params[i] {
			t.Fatalf("params[%d] = %v, want %v", i, got[i], params[i])
		}
	}
}

func TestCheckpointRejectsGarbage(t *testing.T) {
	if _, _, err := DecodeCheckpoint(nil); err == nil {
		t.Fatal("decoded nil blob")
	}
	if _, _, err := DecodeCheckpoint([]byte("short")); err == nil {
		t.Fatal("decoded short blob")
	}
	blob, _ := EncodeCheckpoint(1, []float64{1, 2, 3})
	blob[0] ^= 0xff
	if _, _, err := DecodeCheckpoint(blob); err == nil {
		t.Fatal("decoded blob with bad magic")
	}
	// A plain params blob is not a checkpoint.
	pb, _ := EncodeParams([]float64{1, 2, 3})
	if _, _, err := DecodeCheckpoint(pb); err == nil {
		t.Fatal("decoded params blob as checkpoint")
	}
	if _, err := EncodeCheckpoint(-1, []float64{1}); err == nil {
		t.Fatal("encoded negative epoch")
	}
}

func TestCheckpointCorruptPayload(t *testing.T) {
	blob, _ := EncodeCheckpoint(7, []float64{1, 2, 3, 4})
	blob[len(blob)/2] ^= 0x55
	if _, _, err := DecodeCheckpoint(blob); err == nil {
		t.Fatal("decoded checkpoint with corrupted payload")
	}
}
