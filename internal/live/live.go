// Package live runs the real distributed VCDL stack — an in-process
// BOINC-style project server (core.Distributed) plus volunteer client
// daemons speaking the HTTP protocol — as one orchestrated harness. It
// is the code path the vcdl-server and vcdl-client binaries, the
// scenario engine's real-mode driver (internal/scenario) and the
// experiment API's real-mode lowering (internal/exp) all share: the
// binaries wrap StartServer/RunClient around flags, the harnesses wrap
// a whole Fleet and inject faults through the server's ClientControl
// channel (DESIGN.md §9). Clients may run as goroutines (the default)
// or as separate OS processes via a SpawnFunc.
package live

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"time"

	"vcdl/internal/blob"
	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/obs"
	"vcdl/internal/store"
)

// ServerConfig describes the server half of a real distributed job.
type ServerConfig struct {
	Job    core.JobConfig
	Spec   core.ModelSpec
	Corpus *data.Corpus
	// PServers is the initial parameter-server pool size.
	PServers int
	// Store backs the shared parameter copy (nil = strong store).
	Store store.Store
	// Scheduler overrides the BOINC scheduler mechanics (nil = default).
	Scheduler *boinc.SchedulerConfig
	// Policy selects the assignment policy (nil = paper policy).
	Policy boinc.Policy
	// Replication issues n concurrent copies of every workunit (0/1 = one).
	Replication int
	// Blobs enables the content-addressed data plane: every published
	// input file is also stored under its SHA-256 digest and served at
	// /blob/{digest} with resumable Range transfers (DESIGN.md §11).
	Blobs bool
	// Admission bounds concurrent scheduler/upload handling: beyond
	// MaxConcurrent running plus MaxQueue waiting, requests are shed
	// with 429 + Retry-After, which the client daemons honour with a
	// jittered backoff (DESIGN.md §14). Nil means unlimited. Scheduler
	// state striping is configured separately via Scheduler.Shards.
	Admission *boinc.AdmissionConfig
	// Checkpoint persists the model through the PS group's store after
	// every closed epoch, so Resize/failover restores parameters instead
	// of restarting the epoch.
	Checkpoint bool
	// ResumeEpoch/ResumeParams seed the job from an externally loaded
	// checkpoint (vcdl-server's SIGTERM save file): training resumes at
	// ResumeEpoch+1. ResumeParams nil means no external resume.
	ResumeEpoch  int
	ResumeParams []float64
	// Metrics, when set, instruments the server before it accepts traffic:
	// scheduler lifecycle metrics plus GET /metrics, GET /debug/vars and
	// /debug/pprof on the project mux (DESIGN.md §10). Histograms record
	// wall seconds — the live stack has no virtual clock.
	Metrics *obs.Registry
	// Trace, when set, records workunit lifecycle spans from the
	// scheduler's vantage point (created/assigned/validated/... in wall
	// seconds since the scheduler's epoch).
	Trace *obs.Tracer
}

// Server is a running project server listening on a TCP port.
type Server struct {
	D   *core.Distributed
	ln  net.Listener
	hs  *http.Server
	url string
}

// StartServer builds the distributed job and serves it on addr
// (":0" picks a free port). The returned server is already accepting
// scheduler requests.
func StartServer(addr string, cfg ServerConfig) (*Server, error) {
	var svc *blob.Service
	if cfg.Blobs {
		svc = blob.NewService(blob.NewMemStore(), 0)
	}
	d, err := core.NewDistributedJob(cfg.Job, cfg.Spec, cfg.Corpus, cfg.PServers, cfg.Store, core.DistOptions{
		Scheduler:    cfg.Scheduler,
		Policy:       cfg.Policy,
		Replication:  cfg.Replication,
		Blobs:        svc,
		Checkpoint:   cfg.Checkpoint,
		ResumeEpoch:  cfg.ResumeEpoch,
		ResumeParams: cfg.ResumeParams,
		Metrics:      cfg.Metrics,
	})
	if err != nil {
		return nil, err
	}
	// Instrument before Serve: EnableMetrics must run before the mux
	// takes traffic, and the trace sink must be attached before the first
	// workunit event.
	if cfg.Metrics != nil {
		d.Server().EnableMetrics(cfg.Metrics)
		if svc != nil {
			svc.EnableMetrics(cfg.Metrics)
		}
	}
	if svc != nil {
		d.Server().EnableBlobs(svc)
	}
	if cfg.Admission != nil {
		d.Server().EnableAdmission(*cfg.Admission)
	}
	if cfg.Trace != nil {
		d.Server().Scheduler(func(s *boinc.Scheduler) { s.AddSink(boinc.TraceSink(cfg.Trace)) })
	}
	// Liveness first, diagnosis second: /healthz answers as soon as the
	// listener is up, so CI and orchestrators poll it instead of sleeping.
	d.Server().Handle("GET /healthz", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		clients := d.Server().ClientCount()
		done := false
		select {
		case <-d.Done():
			done = true
		default:
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, "{\"ok\":true,\"pservers\":%d,\"clients\":%d,\"done\":%v}\n",
			d.PServers(), clients, done)
	}))
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("live: listen %s: %w", addr, err)
	}
	s := &Server{D: d, ln: ln, hs: &http.Server{Handler: d.Server()}}
	host, port, _ := net.SplitHostPort(ln.Addr().String())
	if ip := net.ParseIP(host); ip == nil || ip.IsUnspecified() {
		host = "127.0.0.1"
	}
	s.url = "http://" + net.JoinHostPort(host, port)
	go s.hs.Serve(ln)
	return s, nil
}

// URL returns the server's base URL for clients.
func (s *Server) URL() string { return s.url }

// Metrics returns the registry attached via ServerConfig.Metrics (nil
// when the server is uninstrumented).
func (s *Server) Metrics() *obs.Registry { return s.D.Server().Metrics() }

// Blobs returns the blob data-plane service (nil when ServerConfig.Blobs
// was off).
func (s *Server) Blobs() *blob.Service { return s.D.Server().Blobs() }

// Close stops accepting connections.
func (s *Server) Close() error { return s.hs.Close() }

// ClientConfig describes one volunteer client daemon.
type ClientConfig struct {
	ID        string
	ServerURL string
	// Slots is the paper's Tn — simultaneous subtasks on this client.
	Slots int
	// Poll is the idle wait between work requests (0 = client default).
	Poll time.Duration
	// Blobs enables digest-keyed input fetching: assignments that carry
	// blob digests are fetched from /blob/{digest} — resumable, verified,
	// and cached locally — instead of by name from /download.
	Blobs bool
	// BlobCacheDir backs the blob cache with a directory that survives
	// daemon restarts (warm cache on rejoin skips the transfer). Empty
	// means an in-memory cache. Implies Blobs.
	BlobCacheDir string
	// Log receives the daemon's structured events (nil = silent).
	Log *obs.Logger
}

// RunClient runs one volunteer client daemon to completion: it fetches
// the project's published training hyperparameters (job.json) so client
// and server can never disagree on them, then polls for work until ctx
// is cancelled (abrupt death — in-flight results are abandoned) or the
// server detaches it (boinc.ErrDetached; graceful — in-flight work
// finishes first). The returned client carries the session counters
// even when the loop ends in an error.
func RunClient(ctx context.Context, cfg ClientConfig) (*boinc.Client, error) {
	cl := boinc.NewClient(cfg.ID, cfg.ServerURL, cfg.Slots, nil)
	cl.Log = cfg.Log
	if cfg.Poll > 0 {
		cl.Poll = cfg.Poll
	}
	if cfg.Blobs || cfg.BlobCacheDir != "" {
		var cache *blob.Cache
		if cfg.BlobCacheDir != "" {
			c, err := blob.NewDiskCache(cfg.BlobCacheDir)
			if err != nil {
				return cl, fmt.Errorf("live: blob cache %s: %w", cfg.BlobCacheDir, err)
			}
			cache = c
		} else {
			cache = blob.NewMemCache()
		}
		cl.EnableBlobs(cache)
	}
	// Handshake: fetch job.json, waiting out a server that is still
	// coming up (volunteer clients outlive server restarts). The first
	// failure warns; the steady retry stream stays at debug so a slow
	// server boot doesn't flood the log.
	var params core.TrainParams
	for attempt := 0; ; attempt++ {
		raw, err := cl.Download(core.TrainParamsFile)
		if err == nil {
			if params, err = core.DecodeTrainParams(raw); err != nil {
				cfg.Log.Warn("job.json undecodable, giving up", "client", cfg.ID, "err", err)
				return cl, err
			}
			if attempt > 0 {
				cfg.Log.Info("handshake succeeded after retries", "client", cfg.ID, "attempts", attempt+1)
			}
			break
		}
		if attempt == 0 {
			cfg.Log.Warn("job.json not yet available, retrying", "client", cfg.ID, "err", err)
		} else {
			cfg.Log.Debug("job.json still unavailable", "client", cfg.ID, "attempt", attempt+1, "err", err)
		}
		select {
		case <-ctx.Done():
			return cl, ctx.Err()
		case <-time.After(cl.Poll):
		}
	}
	cl.App = core.NewTrainingApp(params.JobConfig())
	err := cl.Loop(ctx)
	if errors.Is(err, boinc.ErrDetached) {
		return cl, err
	}
	if ctx.Err() != nil {
		return cl, ctx.Err()
	}
	return cl, err
}
