package live

import (
	"context"
	"testing"
	"time"

	"vcdl/internal/cloud"
	"vcdl/internal/core"
	"vcdl/internal/data"
)

// tinyFleetConfig builds a fleet config that trains in a few seconds at
// an aggressive time scale.
func tinyFleetConfig(t *testing.T, clients int) FleetConfig {
	t.Helper()
	dc := data.DefaultSynthConfig()
	dc.NTrain, dc.NVal, dc.NTest = 300, 120, 120
	dc.Seed = 3
	corpus, err := data.GenerateSynth(dc)
	if err != nil {
		t.Fatal(err)
	}
	spec := core.SmallCNNSpec(dc.C, dc.H, dc.W, dc.Classes)
	builder, err := spec.Builder()
	if err != nil {
		t.Fatal(err)
	}
	job := core.DefaultJobConfig(builder)
	job.Subtasks = 6
	job.MaxEpochs = 2
	job.BatchSize = 25
	job.LocalPasses = 2
	job.LearningRate = 0.01
	job.ValSubset = 100
	job.Seed = 3
	return FleetConfig{
		Server:         ServerConfig{Job: job, Spec: spec, Corpus: corpus, PServers: 2},
		Fleet:          cloud.Place(cloud.DefaultFleet(clients), nil),
		TasksPerClient: 2,
		TimeScale:      1.0 / 600,
	}
}

// TestFleetRunsAndReportsVirtualUnits boots a fleet, lets it train to
// completion and checks the Result is mapped into virtual hours with
// the scheduler counters attached.
func TestFleetRunsAndReportsVirtualUnits(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	f, err := StartFleet(tinyFleetConfig(t, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := len(f.ActiveClients()); got != 3 {
		t.Fatalf("active clients = %d, want 3", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	res, err := f.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 2 {
		t.Fatalf("epochs = %d, want 2", len(res.Curve.Points))
	}
	if res.Hours <= 0 || res.Hours > 24 {
		t.Fatalf("Hours = %v, want plausible virtual duration", res.Hours)
	}
	for _, p := range res.Curve.Points {
		if p.Hours <= 0 || p.Hours > res.Hours+1e-9 {
			t.Fatalf("curve point hours %v outside run duration %v", p.Hours, res.Hours)
		}
	}
	if res.Issued < 12 || res.AssignMix["paper"] != res.Issued {
		t.Fatalf("issued=%d mix=%v", res.Issued, res.AssignMix)
	}
	if res.BytesDownloaded == 0 || res.BytesUploaded == 0 {
		t.Fatal("no traffic accounted")
	}
}

// TestFleetChurnAndFailover exercises the injection surface directly:
// join, abrupt leave, graceful detach, straggler shaping and PS resize.
func TestFleetChurnAndFailover(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	cfg := tinyFleetConfig(t, 2)
	cfg.Server.Job.MaxEpochs = 3
	f, err := StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	id := f.AddClient(cloud.ClientB, cloud.USWest)
	if got := len(f.ActiveClients()); got != 3 {
		t.Fatalf("active after join = %d", got)
	}
	if !f.SlowClient(id, 2.5) {
		t.Fatal("SlowClient failed")
	}
	if ctl := f.srv.D.Server().ClientControlFor(id); ctl.SlowFactor != 2.5 {
		t.Fatalf("slow factor not pushed: %+v", ctl)
	}
	f.SetPServers(1)
	f.SetPServers(3)
	if f.PServers() != 3 {
		t.Fatalf("PServers = %d, want 3", f.PServers())
	}
	if gone := f.RemoveClients(1); len(gone) != 1 || gone[0] != id {
		t.Fatalf("RemoveClients = %v, want [%s] (LIFO)", gone, id)
	}
	if !f.DetachClient(f.ActiveClients()[1]) {
		t.Fatal("DetachClient failed")
	}
	if got := len(f.ActiveClients()); got != 1 {
		t.Fatalf("active after leave+detach = %d, want 1", got)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	res, err := f.Wait(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curve.Points) != 3 {
		t.Fatalf("epochs = %d, want 3", len(res.Curve.Points))
	}
	if res.MaxPSUsed != 3 {
		t.Fatalf("MaxPSUsed = %d, want 3", res.MaxPSUsed)
	}
}

// TestFleetWallLimit pins the wall-clock budget: an expired context
// fails the run instead of hanging.
func TestFleetWallLimit(t *testing.T) {
	cfg := tinyFleetConfig(t, 2)
	cfg.TimeScale = 1 // absurdly slow pacing: cannot finish in time
	f, err := StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
	defer cancel()
	if _, err := f.Wait(ctx); err == nil {
		t.Fatal("Wait returned nil past its wall budget")
	}
}
