package live

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/cloud"
	"vcdl/internal/metrics"
	"vcdl/internal/obs"
	"vcdl/internal/ops"
	"vcdl/internal/vcsim"
)

// DefaultTimeScale maps one virtual minute onto one wall-clock second:
// scenario event times, scheduler deadlines and per-instance execution
// pacing are all multiplied by it, so a run that takes half a virtual
// hour in the simulator takes about thirty real seconds against a live
// fleet. See DESIGN.md §9 for what this mapping does and doesn't
// guarantee.
const DefaultTimeScale = 1.0 / 60

// SpawnFunc launches one client daemon and returns a channel that
// yields its terminal error. Cancelling ctx must kill the client
// abruptly (in-flight results abandoned). The default spawner runs
// RunClient on a goroutine; cmd/vcdl-scenario's -procs mode substitutes
// one that execs separate OS processes.
type SpawnFunc func(ctx context.Context, cfg ClientConfig) (<-chan error, error)

func goroutineSpawn(ctx context.Context, cfg ClientConfig) (<-chan error, error) {
	ch := make(chan error, 1)
	go func() {
		_, err := RunClient(ctx, cfg)
		ch <- err
	}()
	return ch, nil
}

// FleetConfig describes a whole real-mode deployment: the server half
// plus an initial client fleet with the simulator's calibrated pacing.
type FleetConfig struct {
	Server ServerConfig
	// Name labels the run's Result (empty derives PnCnTn).
	Name string
	// Fleet is the initial client placement (instance type + region).
	Fleet []cloud.PlacedInstance
	// TasksPerClient is the paper's Tn.
	TasksPerClient int
	// BaseSubtaskSeconds is the virtual execution time of one subtask at
	// the reference clock (vcsim's calibrated te); each client's pacing
	// scales it by clock ratio, steady-state contention and TimeScale.
	BaseSubtaskSeconds float64
	// ThreadsPerTask and ContentionExp parameterize the simulator's
	// slot-contention model; pacing assumes the steady state (all Tn
	// slots busy), load^exp for load = Tn·threads/vCPU > 1. Zero values
	// take the simulator's defaults (4 threads, exponent 0.72).
	ThreadsPerTask float64
	ContentionExp  float64
	// TimeoutVirtual is the scheduler result deadline in virtual seconds.
	TimeoutVirtual float64
	// TimeScale converts virtual seconds to wall seconds
	// (0 = DefaultTimeScale).
	TimeScale float64
	// Preempt is the initial per-assignment preemption probability.
	Preempt float64
	// Poll is the client idle poll (0 = 25ms).
	Poll time.Duration
	// Blobs enables the content-addressed data plane end to end: the
	// server publishes inputs at /blob/{digest}, every client gets a
	// per-member disk cache that survives depart/rejoin (warm caches skip
	// the transfer), and shards travel by digest (DESIGN.md §11).
	Blobs bool
	// Checkpoint persists epoch checkpoints through the PS group's store
	// so failover (SetPServers shrink) restores instead of restarting.
	Checkpoint bool
	// Byzantine marks the first ByzantineClients members of the initial
	// fleet adversarial with the named behavior (boinc.ByzantineBehaviors).
	// The behavior travels to the daemons through ClientControl, so it
	// works for -procs clients too; SetByzantine toggles it mid-run.
	Byzantine        string
	ByzantineClients int
	// Spawn launches clients (nil = in-process goroutines).
	Spawn SpawnFunc
	// Metrics instruments the server half (shorthand for
	// Server.Metrics; either spelling works, FleetConfig wins when both
	// are set). Histograms record wall seconds.
	Metrics *obs.Registry
	// Trace records scheduler-side workunit lifecycle spans (shorthand
	// for Server.Trace).
	Trace *obs.Tracer
	// Log receives fleet lifecycle events and is handed to every
	// goroutine-spawned client daemon (nil = silent). Process spawners
	// receive it in ClientConfig and may forward it as a -v flag.
	Log *obs.Logger
}

// member is one tracked client daemon.
type member struct {
	id        string
	inst      cloud.PlacedInstance
	cancel    context.CancelFunc
	done      <-chan error
	slow      float64
	departed  bool
	detached  bool
	byzantine string
	// cacheDir is the member's blob cache directory. It is keyed by the
	// member ID and deliberately outlives departure, so a rejoining
	// volunteer comes back with a warm digest cache.
	cacheDir string
}

// Fleet is a running real-mode deployment. Its mutating methods mirror
// the simulator's injection hooks (vcsim.Sim) one for one, so the
// scenario engine drives either engine through the same interface; all
// shaping reaches the clients through the server's ClientControl
// channel in scheduler replies, never through shared memory — which is
// what lets -procs clients live in separate OS processes.
type Fleet struct {
	cfg   FleetConfig
	srv   *Server
	scale float64
	start time.Time

	ctx    context.Context
	cancel context.CancelFunc

	mu             sync.Mutex
	members        []*member
	nextID         int
	preempt        float64
	rttOverride    map[cloud.Region]float64 // virtual seconds
	timeoutVirtual float64
	maxPS          int
	// blobRoot holds the per-member blob cache directories when the data
	// plane is on; removed on Close.
	blobRoot string

	// opsCore is the shared ops control plane over this fleet: the /ops
	// admin API mounted on the server mux, the CLI and scenario events all
	// drive it, and it counts every action in vcdl_ops_actions_total.
	opsCore *ops.Core
}

// StartFleet boots the server and the initial client fleet. The fleet
// is live immediately; Wait blocks until training completes.
func StartFleet(cfg FleetConfig) (*Fleet, error) {
	if len(cfg.Fleet) == 0 {
		return nil, fmt.Errorf("live: empty client fleet")
	}
	if cfg.TasksPerClient < 1 {
		cfg.TasksPerClient = 1
	}
	scale := cfg.TimeScale
	if scale <= 0 {
		scale = DefaultTimeScale
	}
	if cfg.TimeoutVirtual <= 0 {
		cfg.TimeoutVirtual = 1800
	}
	if cfg.BaseSubtaskSeconds <= 0 {
		cfg.BaseSubtaskSeconds = 144
	}
	if cfg.ThreadsPerTask <= 0 {
		cfg.ThreadsPerTask = 4
	}
	if cfg.ContentionExp <= 0 {
		cfg.ContentionExp = 0.72
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 25 * time.Millisecond
	}
	if cfg.Spawn == nil {
		cfg.Spawn = goroutineSpawn
	}
	if cfg.ByzantineClients > 0 && !boinc.ValidByzantine(cfg.Byzantine) {
		return nil, fmt.Errorf("live: unknown byzantine behavior %q (want one of %v)", cfg.Byzantine, boinc.ByzantineBehaviors)
	}
	if cfg.Server.PServers < 1 {
		cfg.Server.PServers = 1
	}
	// The scheduler runs on the wall clock, so its deadline is the
	// scenario's virtual timeout scaled down; policies see the job seed.
	sched := boinc.DefaultSchedulerConfig()
	if cfg.Server.Scheduler != nil {
		sched = *cfg.Server.Scheduler
	}
	sched.DefaultTimeout = cfg.TimeoutVirtual * scale
	sched.Seed = cfg.Server.Job.Seed
	cfg.Server.Scheduler = &sched
	if cfg.Metrics != nil {
		cfg.Server.Metrics = cfg.Metrics
	}
	if cfg.Trace != nil {
		cfg.Server.Trace = cfg.Trace
	}
	if cfg.Blobs {
		cfg.Server.Blobs = true
	}
	if cfg.Checkpoint {
		cfg.Server.Checkpoint = true
	}
	var blobRoot string
	if cfg.Server.Blobs {
		root, err := os.MkdirTemp("", "vcdl-blobcache-")
		if err != nil {
			return nil, fmt.Errorf("live: blob cache root: %w", err)
		}
		blobRoot = root
	}

	// The clock starts before the server so the distributed job's
	// wall-stamped curve points always fall inside the run's duration.
	start := time.Now()
	srv, err := StartServer("127.0.0.1:0", cfg.Server)
	if err != nil {
		return nil, err
	}
	cfg.Log.Info("server listening", "url", srv.URL(),
		"clients", len(cfg.Fleet), "timescale", scale, "metrics", cfg.Server.Metrics != nil)
	ctx, cancel := context.WithCancel(context.Background())
	f := &Fleet{
		cfg:            cfg,
		srv:            srv,
		scale:          scale,
		start:          start,
		ctx:            ctx,
		cancel:         cancel,
		preempt:        cfg.Preempt,
		rttOverride:    make(map[cloud.Region]float64),
		timeoutVirtual: cfg.TimeoutVirtual,
		maxPS:          cfg.Server.PServers,
		blobRoot:       blobRoot,
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for i, pi := range cfg.Fleet {
		m, err := f.addClientLocked(pi)
		if err != nil {
			f.closeLocked()
			return nil, err
		}
		if i < cfg.ByzantineClients {
			m.byzantine = cfg.Byzantine
			f.pushControlLocked(m)
		}
	}
	// One shared ops core over this fleet, mounted on the live server mux
	// so `curl $URL/ops/...` works against any running deployment. The
	// core counts into the same registry the server scrapes at /metrics.
	f.opsCore = ops.NewCore(f, cfg.Server.Metrics)
	srv.D.Server().Handle("/ops/", f.opsCore.Handler())
	return f, nil
}

// Ops returns the fleet's shared ops control-plane core.
func (f *Fleet) Ops() *ops.Core { return f.opsCore }

// URL returns the project server's base URL.
func (f *Fleet) URL() string { return f.srv.URL() }

// Server returns the underlying project server.
func (f *Fleet) Server() *Server { return f.srv }

// VirtualHours maps elapsed wall time back into the scenario's virtual
// hours (the inverse of the event mapping).
func (f *Fleet) VirtualHours() float64 {
	return time.Since(f.start).Seconds() / f.scale / 3600
}

// controlLocked computes the shaping a member should currently receive.
func (f *Fleet) controlLocked(m *member) boinc.ClientControl {
	rtt, ok := f.rttOverride[m.inst.Region]
	if !ok {
		rtt = m.inst.Region.RTT()
	}
	// Steady-state contention: the simulator slows each subtask by
	// load^exp once a client's busy slots oversubscribe its vCPUs.
	contention := 1.0
	if load := float64(f.cfg.TasksPerClient) * f.cfg.ThreadsPerTask / float64(m.inst.VCPU); load > 1 {
		contention = math.Pow(load, f.cfg.ContentionExp)
	}
	return boinc.ClientControl{
		// Pace to the simulator's per-instance execution model: te at
		// the reference clock, scaled by this instance's clock ratio
		// and steady-state slot contention.
		MinTaskSeconds:     f.cfg.BaseSubtaskSeconds * (cloud.ClientB.ClockGHz / m.inst.ClockGHz) * contention * f.scale,
		SlowFactor:         m.slow,
		PreemptProb:        f.preempt,
		PreemptHoldSeconds: (f.timeoutVirtual + 1) * f.scale,
		RTTSeconds:         rtt * f.scale,
		Detach:             m.detached,
		Byzantine:          m.byzantine,
	}
}

func (f *Fleet) pushControlLocked(m *member) {
	f.srv.D.Server().SetClientControl(m.id, f.controlLocked(m))
}

func (f *Fleet) pushAllLocked() {
	for _, m := range f.members {
		if !m.departed || m.detached {
			f.pushControlLocked(m)
		}
	}
}

// spawnLocked launches (or relaunches) the daemon for a member whose
// control is already installed.
func (f *Fleet) spawnLocked(m *member) error {
	ctx, cancel := context.WithCancel(f.ctx)
	m.cancel = cancel
	done, err := f.cfg.Spawn(ctx, ClientConfig{
		ID:           m.id,
		ServerURL:    f.srv.URL(),
		Slots:        f.cfg.TasksPerClient,
		Poll:         f.cfg.Poll,
		Blobs:        f.blobRoot != "",
		BlobCacheDir: m.cacheDir,
		Log:          f.cfg.Log,
	})
	if err != nil {
		cancel()
		return fmt.Errorf("live: spawn %s: %w", m.id, err)
	}
	m.done = done
	return nil
}

// addClientLocked spawns one client daemon with its control installed.
func (f *Fleet) addClientLocked(pi cloud.PlacedInstance) (*member, error) {
	m := &member{
		id:   fmt.Sprintf("client-%02d-%s", f.nextID, pi.Name),
		inst: pi,
		slow: 1,
	}
	f.nextID++
	if f.blobRoot != "" {
		m.cacheDir = filepath.Join(f.blobRoot, m.id)
	}
	f.pushControlLocked(m)
	if err := f.spawnLocked(m); err != nil {
		return nil, err
	}
	f.cfg.Log.Info("client joined", "client", m.id, "instance", pi.Name, "region", string(pi.Region))
	f.members = append(f.members, m)
	return m, nil
}

// AddClient joins a new client of the given instance type in the given
// region (volunteer churn, flash crowds) and returns its ID.
func (f *Fleet) AddClient(inst cloud.InstanceType, region cloud.Region) string {
	if region == "" {
		region = cloud.USEast
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	m, err := f.addClientLocked(cloud.PlacedInstance{InstanceType: inst, Region: region})
	if err != nil {
		f.cfg.Log.Warn("client spawn failed", "instance", inst.Name, "region", string(region), "err", err)
		return fmt.Sprintf("(spawn failed: %v)", err)
	}
	return m.id
}

// ActiveClients lists the IDs of clients currently in the pool, in join
// order (the simulator's convention, so `slow #i` addresses match).
func (f *Fleet) ActiveClients() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var ids []string
	for _, m := range f.members {
		if !m.departed {
			ids = append(ids, m.id)
		}
	}
	return ids
}

// dropLocked marks a member gone on the scheduler side.
func (f *Fleet) dropLocked(m *member) {
	f.srv.D.Server().Scheduler(func(s *boinc.Scheduler) { s.DropClient(m.id) })
}

// departLocked retires one member: gracefully (the server's next reply
// tells the client to finish in-flight work and exit) or abruptly (its
// process/goroutine is killed; in-flight results are abandoned and
// recovered by the scheduler at the deadline).
func (f *Fleet) departLocked(m *member, graceful bool) {
	m.departed = true
	f.cfg.Log.Info("client departing", "client", m.id, "graceful", graceful)
	if graceful {
		m.detached = true
		f.pushControlLocked(m)
	} else {
		m.cancel()
	}
	f.dropLocked(m)
}

// departByID retires the named member, if active.
func (f *Fleet) departByID(id string, graceful bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.id == id && !m.departed {
			f.departLocked(m, graceful)
			return true
		}
	}
	return false
}

// departLIFO retires the n most recently joined active members.
func (f *Fleet) departLIFO(n int, graceful bool) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var gone []string
	for i := len(f.members) - 1; i >= 0 && len(gone) < n; i-- {
		if m := f.members[i]; !m.departed {
			f.departLocked(m, graceful)
			gone = append(gone, m.id)
		}
	}
	return gone
}

// RemoveClients abruptly departs the n most recently joined active
// clients (LIFO, so a flash crowd recedes in join order).
func (f *Fleet) RemoveClients(n int) []string { return f.departLIFO(n, false) }

// RemoveClient abruptly departs one client by ID.
func (f *Fleet) RemoveClient(id string) bool { return f.departByID(id, false) }

// DetachClient gracefully departs one client by ID. Only the real
// engine can express this — simulator departures are always abrupt.
func (f *Fleet) DetachClient(id string) bool { return f.departByID(id, true) }

// DetachClients gracefully departs the n most recently joined active
// clients (LIFO), returning their IDs.
func (f *Fleet) DetachClients(n int) []string { return f.departLIFO(n, true) }

// rejoinLocked revives one departed member under its original ID and —
// when the data plane is on — its original blob cache directory, so the
// volunteer returns with a warm digest cache and only fetches what it
// never finished. The scheduler revives the client automatically on its
// first work request.
func (f *Fleet) rejoinLocked(m *member) error {
	m.departed = false
	m.detached = false
	m.slow = 1
	f.pushControlLocked(m)
	if err := f.spawnLocked(m); err != nil {
		m.departed = true
		return err
	}
	f.cfg.Log.Info("client rejoined", "client", m.id, "warm_cache", m.cacheDir != "")
	return nil
}

// RejoinClient revives the named departed client (same ID, retained
// blob cache). Returns false when no such departed member exists.
func (f *Fleet) RejoinClient(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.id == id && m.departed {
			if err := f.rejoinLocked(m); err != nil {
				f.cfg.Log.Warn("client rejoin failed", "client", id, "err", err)
				return false
			}
			return true
		}
	}
	return false
}

// RejoinClients revives the n most recently departed clients (LIFO —
// the mirror image of RemoveClients) and returns their IDs.
func (f *Fleet) RejoinClients(n int) []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	var back []string
	for i := len(f.members) - 1; i >= 0 && len(back) < n; i-- {
		if m := f.members[i]; m.departed {
			if err := f.rejoinLocked(m); err != nil {
				f.cfg.Log.Warn("client rejoin failed", "client", m.id, "err", err)
				continue
			}
			back = append(back, m.id)
		}
	}
	return back
}

// SetBlobKill arms (n > 0) or disarms (0) data-plane fault injection:
// every blob transfer is severed after n bytes, forcing clients through
// the Range-resume path. Each client attempt advances by n bytes, so
// transfers still converge. Returns false when the data plane is off.
func (f *Fleet) SetBlobKill(n int64) bool {
	svc := f.srv.Blobs()
	if svc == nil {
		return false
	}
	svc.SetKillAfter(n)
	return true
}

// SlowClient turns a client into a straggler (factor > 1) or restores
// it (factor 1).
func (f *Fleet) SlowClient(id string, factor float64) bool {
	if factor <= 0 {
		factor = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.id == id && !m.departed {
			m.slow = factor
			f.pushControlLocked(m)
			return true
		}
	}
	return false
}

// SlowClientAt slows the i-th active client (0-based).
func (f *Fleet) SlowClientAt(i int, factor float64) (string, bool) {
	ids := f.ActiveClients()
	if i < 0 || i >= len(ids) {
		return "", false
	}
	return ids[i], f.SlowClient(ids[i], factor)
}

// SetPreemptProb hot-changes the fleet-wide preemption probability.
func (f *Fleet) SetPreemptProb(p float64) {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.preempt = p
	f.pushAllLocked()
}

// PreemptModel returns the §IV-E binomial model for the current
// deployment, in virtual time like the simulator's.
func (f *Fleet) PreemptModel(p float64) cloud.PreemptModel {
	f.mu.Lock()
	defer f.mu.Unlock()
	return cloud.PreemptModel{
		P:               p,
		TaskExecSeconds: f.cfg.BaseSubtaskSeconds,
		TimeoutSeconds:  f.timeoutVirtual,
	}
}

// FleetShape reports subtasks-per-epoch and tasks-per-client.
func (f *Fleet) FleetShape() (subtasks, tasksPerClient int) {
	return f.cfg.Server.Job.Subtasks, f.cfg.TasksPerClient
}

// SetRegionRTT overrides a region's round-trip latency (virtual
// seconds; clients in the region see it scaled on every HTTP call).
func (f *Fleet) SetRegionRTT(region cloud.Region, rtt float64) {
	if rtt < 0 {
		rtt = 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rttOverride[region] = rtt
	f.pushAllLocked()
}

// ClearRegionRTT restores a region's static latency.
func (f *Fleet) ClearRegionRTT(region cloud.Region) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.rttOverride, region)
	f.pushAllLocked()
}

// PServers returns the current parameter-server pool size.
func (f *Fleet) PServers() int { return f.srv.D.PServers() }

// SetPServers resizes the parameter-server pool (failover/recovery).
func (f *Fleet) SetPServers(n int) {
	if n < 1 {
		n = 1
	}
	f.srv.D.SetPServers(n)
	f.mu.Lock()
	if n > f.maxPS {
		f.maxPS = n
	}
	f.mu.Unlock()
}

// SetTimeout hot-changes the result deadline (virtual seconds): future
// (re)issues use the new deadline; already-issued results keep theirs.
func (f *Fleet) SetTimeout(seconds float64) {
	if seconds <= 0 {
		return
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.timeoutVirtual = seconds
	wall := seconds * f.scale
	f.srv.D.Server().Scheduler(func(s *boinc.Scheduler) {
		s.SetDefaultTimeout(wall)
		s.RetimePending(wall)
	})
	f.pushAllLocked() // preempt hold tracks the deadline
}

// SetReliabilityFloor hot-changes the retry reliability gate.
func (f *Fleet) SetReliabilityFloor(floor float64) {
	f.srv.D.Server().Scheduler(func(s *boinc.Scheduler) { s.SetReliabilityFloor(floor) })
}

// SetPolicy hot-swaps the scheduler's assignment policy.
func (f *Fleet) SetPolicy(p boinc.Policy) {
	f.srv.D.Server().Scheduler(func(s *boinc.Scheduler) { s.SetPolicy(p) })
}

// PolicyName reports the active assignment policy.
func (f *Fleet) PolicyName() string {
	return f.srv.D.Server().PolicyName()
}

// Cordon quarantines (on=true) or releases (on=false) an active client:
// the scheduler answers its work requests with nothing while in-flight
// results complete or expire normally.
func (f *Fleet) Cordon(id string, on bool) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.id == id && !m.departed {
			f.srv.D.Server().Scheduler(func(s *boinc.Scheduler) { s.SetCordoned(id, on) })
			f.cfg.Log.Info("client cordon", "client", id, "on", on)
			return true
		}
	}
	return false
}

// SetByzantine switches an active client's adversarial behavior mid-run
// ("" or "off" restores honesty). The change reaches the daemon through
// ClientControl in its next scheduler reply.
func (f *Fleet) SetByzantine(id, behavior string) bool {
	if behavior == "off" {
		behavior = ""
	}
	if behavior != "" && !boinc.ValidByzantine(behavior) {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.id == id && !m.departed {
			m.byzantine = behavior
			f.pushControlLocked(m)
			f.cfg.Log.Info("client byzantine", "client", id, "behavior", behavior)
			return true
		}
	}
	return false
}

// KnownClient reports whether a client id ever existed in this fleet,
// departed or not.
func (f *Fleet) KnownClient(id string) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, m := range f.members {
		if m.id == id {
			return true
		}
	}
	return false
}

// ClientStatus assembles the rich per-client view the ops admin API
// serves: fleet-side shaping joined with the scheduler's live state.
func (f *Fleet) ClientStatus() []ops.ClientStatus {
	sums := f.srv.D.Server().ClientSummaries()
	byID := make(map[string]boinc.ClientSummary, len(sums))
	for _, s := range sums {
		byID[s.ID] = s
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]ops.ClientStatus, 0, len(f.members))
	for _, m := range f.members {
		sum, seen := byID[m.id]
		cs := ops.ClientStatus{
			ID:          m.id,
			Instance:    m.inst.Name,
			Region:      string(m.inst.Region),
			Active:      !m.departed,
			Detached:    m.detached,
			Byzantine:   m.byzantine,
			SlowFactor:  m.slow,
			Slots:       f.cfg.TasksPerClient,
			PaceSeconds: f.controlLocked(m).MinTaskSeconds,
			Reliability: 1,
		}
		if seen {
			cs.Cordoned = sum.Cordoned
			cs.Reliability = sum.Reliability
			cs.InFlight = sum.InFlight
			cs.CachedFiles = sum.CachedFiles
		}
		out = append(out, cs)
	}
	return out
}

// Wait blocks until training completes (or ctx expires — the caller's
// wall-clock budget) and assembles the run outcome in the simulator's
// Result shape, with all times mapped back into virtual hours so
// assertions and fidelity reports compare like with like. The fleet is
// torn down before Wait returns.
func (f *Fleet) Wait(ctx context.Context) (*vcsim.Result, error) {
	var runErr error
	select {
	case <-f.srv.D.Done():
	case <-ctx.Done():
		runErr = fmt.Errorf("live: run exceeded its wall-clock budget (%w)", ctx.Err())
	}
	wall := time.Since(f.start).Seconds()
	f.Close()
	if runErr != nil {
		return nil, runErr
	}
	rr, err := f.srv.D.Result()
	if err != nil {
		return nil, err
	}

	name := f.cfg.Name
	if name == "" {
		name = fmt.Sprintf("P%dC%dT%d", f.cfg.Server.PServers, len(f.cfg.Fleet), f.cfg.TasksPerClient)
	}
	res := &vcsim.Result{
		Name:   name,
		Curve:  rr.Curve,
		Hours:  wall / f.scale / 3600,
		Epochs: rr.Epochs,
	}
	// The distributed job stamps curve points with wall hours; map them
	// into virtual hours like every other reported time.
	res.Curve.Points = append([]metrics.Point(nil), rr.Curve.Points...)
	for i := range res.Curve.Points {
		res.Curve.Points[i].Hours /= f.scale
	}
	f.mu.Lock()
	res.MaxPSUsed = f.maxPS
	f.mu.Unlock()
	srv := f.srv.D.Server()
	st := srv.SchedStats()
	res.Issued = st.Issued
	res.Reissued = st.Reissued
	res.Timeouts = st.Timeouts
	res.InvalidResults = st.Invalid
	res.QuorumRetries = st.QuorumRetries
	res.AssignMix = srv.AssignmentMix()
	res.BytesDownloaded, res.BytesUploaded = srv.Traffic()
	if svc := f.srv.Blobs(); svc != nil {
		res.BlobBytes = svc.ServedBytes()
		res.BlobResumes = int(svc.Resumes())
		res.BlobCacheHits = int(svc.CacheHits())
	}
	res.CkptEpoch = f.srv.D.CheckpointEpoch()
	res.CkptRestores = f.srv.D.CheckpointRestores()
	return res, nil
}

// Close tears the fleet down: clients are killed, the server stops.
// Idempotent.
func (f *Fleet) Close() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.closeLocked()
}

func (f *Fleet) closeLocked() {
	f.cancel()
	f.srv.Close()
	// Give client daemons a moment to unwind so test runs stay clean
	// under the race detector.
	for _, m := range f.members {
		select {
		case <-m.done:
		case <-time.After(2 * time.Second):
		}
	}
	if f.blobRoot != "" {
		os.RemoveAll(f.blobRoot)
		f.blobRoot = ""
	}
}
