package live

import (
	"context"
	"os"
	"sync"
	"testing"
	"time"

	"vcdl/internal/boinc"
	"vcdl/internal/vcsim"
)

// assignmentWatch records every assignment the scheduler hands out so
// the test can prove a detach/rejoin cycle never double-issues a result
// copy and that the rejoined member actually resumes taking work.
type assignmentWatch struct {
	mu       sync.Mutex
	byResult map[int64]int
	byClient map[string]int
	dups     []int64
}

func (w *assignmentWatch) OnSchedEvent(e boinc.SchedEvent) {
	if e.Kind != boinc.EvAssigned {
		return
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	w.byResult[e.ResultID]++
	if w.byResult[e.ResultID] > 1 {
		w.dups = append(w.dups, e.ResultID)
	}
	w.byClient[e.Client]++
}

func (w *assignmentWatch) clientCount(id string) int {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.byClient[id]
}

// TestFleetRejoinUnderLoad detaches a member while training traffic is
// live on a striped scheduler, then rejoins it mid-run: the member's
// blob cache must survive departure (warm rejoin), the revived client
// must resume taking assignments, and no result copy may ever be issued
// twice — the sharded scheduler's core correctness claim under churn.
func TestFleetRejoinUnderLoad(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second real-HTTP training run")
	}
	cfg := tinyFleetConfig(t, 3)
	cfg.Server.Job.MaxEpochs = 5
	cfg.Blobs = true
	// Pace subtasks (~0.5s wall each) so training outlives the
	// detach/rejoin churn instead of draining in one burst.
	cfg.BaseSubtaskSeconds = 300
	sched := boinc.DefaultSchedulerConfig()
	sched.Shards = 4
	cfg.Server.Scheduler = &sched
	f, err := StartFleet(cfg)
	if err != nil {
		t.Fatal(err)
	}
	watch := &assignmentWatch{byResult: make(map[int64]int), byClient: make(map[string]int)}
	f.Server().D.Server().Sharded().AddSink(watch)

	victim := f.ActiveClients()[0]
	var cacheDir string
	f.mu.Lock()
	for _, m := range f.members {
		if m.id == victim {
			cacheDir = m.cacheDir
		}
	}
	f.mu.Unlock()
	if cacheDir == "" {
		t.Fatalf("member %s has no blob cache dir with Blobs on", victim)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 90*time.Second)
	defer cancel()
	type waitOut struct {
		res *vcsim.Result
		err error
	}
	resCh := make(chan waitOut, 1)
	go func() {
		res, err := f.Wait(ctx)
		resCh <- waitOut{res, err}
	}()

	time.Sleep(600 * time.Millisecond) // let load build before the churn
	if !f.DetachClient(victim) {
		t.Fatalf("DetachClient(%s) failed", victim)
	}
	time.Sleep(600 * time.Millisecond)
	// The warm-cache contract: departure must not clear the on-disk
	// digest cache the member accumulated.
	entries, err := os.ReadDir(cacheDir)
	if err != nil {
		t.Fatalf("blob cache dir gone after detach: %v", err)
	}
	cachedAtDetach := len(entries)
	assignsBefore := watch.clientCount(victim)
	doneBeforeRejoin := f.Server().D.Server().Done()
	if !f.RejoinClient(victim) {
		t.Fatalf("RejoinClient(%s) failed", victim)
	}

	out := <-resCh
	if out.err != nil {
		t.Fatal(out.err)
	}
	watch.mu.Lock()
	dups := append([]int64(nil), watch.dups...)
	watch.mu.Unlock()
	if len(dups) > 0 {
		t.Fatalf("result copies issued twice across detach/rejoin: %v", dups)
	}
	if cachedAtDetach == 0 {
		t.Errorf("detached member's blob cache was empty — warm-rejoin path not exercised")
	}
	if !doneBeforeRejoin {
		if after := watch.clientCount(victim); after <= assignsBefore {
			t.Errorf("rejoined client took no new work: %d assignments before, %d after", assignsBefore, after)
		}
	}
	if inflight := f.Server().D.Server().Sharded().InFlightOf(victim); inflight != 0 {
		t.Errorf("rejoined client still holds %d in-flight results after completion", inflight)
	}
	if out.res.BlobCacheHits == 0 {
		t.Errorf("no blob cache hits recorded — caches never warmed")
	}
	if len(out.res.Curve.Points) != 5 {
		t.Errorf("epochs = %d, want 5 (training did not survive the churn)", len(out.res.Curve.Points))
	}
}
