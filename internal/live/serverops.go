package live

import (
	"sort"

	"vcdl/internal/boinc"
	"vcdl/internal/core"
	"vcdl/internal/ops"
)

// serverTarget adapts a standalone project server (vcdl-server's
// deployment shape: volunteer daemons are other people's processes the
// server can neither spawn nor revive) into an ops.Core target. It
// exposes the scheduler-scoped capability subset — cordon, straggler
// and byzantine shaping via ClientControl, graceful drain, PS resize,
// policy swap, tuning, listing — and deliberately omits Churner and
// Rejoiner: the ops core counts those verbs as failures instead of
// pretending a server can conjure volunteers (a Fleet target can, and
// mounts its richer core instead).
type serverTarget struct {
	d *core.Distributed
}

// summaries snapshots the scheduler's per-client view.
func (t serverTarget) summaries() []boinc.ClientSummary {
	return t.d.Server().ClientSummaries()
}

// ActiveClients lists clients the scheduler has seen and not written off.
func (t serverTarget) ActiveClients() []string {
	var ids []string
	for _, s := range t.summaries() {
		if !s.Gone {
			ids = append(ids, s.ID)
		}
	}
	sort.Strings(ids)
	return ids
}

// KnownClient reports whether the scheduler has ever heard from id.
func (t serverTarget) KnownClient(id string) bool {
	for _, s := range t.summaries() {
		if s.ID == id {
			return true
		}
	}
	return false
}

func (t serverTarget) Cordon(id string, on bool) bool {
	if !t.KnownClient(id) {
		return false
	}
	t.d.Server().Scheduler(func(s *boinc.Scheduler) { s.SetCordoned(id, on) })
	return true
}

// control mutates a known client's shaping through the piggybacked
// ClientControl channel (picked up on its next work request).
func (t serverTarget) control(id string, mutate func(*boinc.ClientControl)) bool {
	if !t.KnownClient(id) {
		return false
	}
	ctl := t.d.Server().ClientControlFor(id)
	mutate(&ctl)
	t.d.Server().SetClientControl(id, ctl)
	return true
}

func (t serverTarget) SlowClient(id string, factor float64) bool {
	return t.control(id, func(ctl *boinc.ClientControl) { ctl.SlowFactor = factor })
}

func (t serverTarget) SlowClientAt(index int, factor float64) (string, bool) {
	ids := t.ActiveClients()
	if index < 0 || index >= len(ids) {
		return "", false
	}
	return ids[index], t.SlowClient(ids[index], factor)
}

func (t serverTarget) SetByzantine(id, behavior string) bool {
	if behavior == "off" {
		behavior = ""
	}
	if behavior != "" && !boinc.ValidByzantine(behavior) {
		return false
	}
	return t.control(id, func(ctl *boinc.ClientControl) { ctl.Byzantine = behavior })
}

func (t serverTarget) DetachClient(id string) bool {
	return t.control(id, func(ctl *boinc.ClientControl) { ctl.Detach = true })
}

// DetachClients drains the last n clients in ID order (a standalone
// server has no join order to prefer).
func (t serverTarget) DetachClients(n int) []string {
	ids := t.ActiveClients()
	if n > len(ids) {
		n = len(ids)
	}
	var gone []string
	for _, id := range ids[len(ids)-n:] {
		if t.DetachClient(id) {
			gone = append(gone, id)
		}
	}
	return gone
}

func (t serverTarget) PServers() int     { return t.d.PServers() }
func (t serverTarget) SetPServers(n int) { t.d.SetPServers(n) }

func (t serverTarget) SetPolicy(p boinc.Policy) {
	t.d.Server().Scheduler(func(s *boinc.Scheduler) { s.SetPolicy(p) })
}

func (t serverTarget) PolicyName() string {
	return t.d.Server().PolicyName()
}

// SetTimeout hot-changes the result deadline. A standalone server has
// no virtual clock, so the seconds are wall seconds as-is.
func (t serverTarget) SetTimeout(seconds float64) {
	if seconds <= 0 {
		return
	}
	t.d.Server().Scheduler(func(s *boinc.Scheduler) {
		s.SetDefaultTimeout(seconds)
		s.RetimePending(seconds)
	})
}

func (t serverTarget) SetReliabilityFloor(floor float64) {
	t.d.Server().Scheduler(func(s *boinc.Scheduler) { s.SetReliabilityFloor(floor) })
}

// ClientStatus renders the scheduler's view plus the installed shaping.
// Instance and region stay empty: volunteers are remote processes whose
// hardware the server never learns.
func (t serverTarget) ClientStatus() []ops.ClientStatus {
	sums := t.summaries()
	out := make([]ops.ClientStatus, 0, len(sums))
	for _, s := range sums {
		ctl := t.d.Server().ClientControlFor(s.ID)
		slow := ctl.SlowFactor
		if slow <= 0 {
			slow = 1
		}
		out = append(out, ops.ClientStatus{
			ID:          s.ID,
			Active:      !s.Gone,
			Detached:    ctl.Detach,
			Cordoned:    s.Cordoned,
			Byzantine:   ctl.Byzantine,
			SlowFactor:  slow,
			PaceSeconds: ctl.MinTaskSeconds,
			Reliability: s.Reliability,
			InFlight:    s.InFlight,
			CachedFiles: s.CachedFiles,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// EnableOps mounts the /ops admin API with a server-scoped core and
// returns it. vcdl-server calls this for its standalone deployment;
// fleets skip it and mount their own fleet-scoped core on the same
// path, so the two must not both register.
func (s *Server) EnableOps() *ops.Core {
	c := ops.NewCore(serverTarget{s.D}, s.Metrics())
	s.D.Server().Handle("/ops/", c.Handler())
	return c
}
