package live

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os/exec"
	"strconv"
	"time"

	"vcdl/internal/boinc"
)

// SpawnProcess launches one client daemon as a separate OS process by
// re-exec'ing exe in its hidden `_client` mode (cmd/vcdl-scenario
// installs ClientProcMain under that name). Cancelling ctx kills the
// process — an abrupt volunteer death, in-flight results abandoned.
func SpawnProcess(ctx context.Context, exe string, cfg ClientConfig) (<-chan error, error) {
	args := []string{"_client",
		"-server", cfg.ServerURL,
		"-id", cfg.ID,
		"-slots", strconv.Itoa(cfg.Slots),
	}
	if cfg.Poll > 0 {
		args = append(args, "-poll", cfg.Poll.String())
	}
	if cfg.Blobs || cfg.BlobCacheDir != "" {
		args = append(args, "-blobs")
	}
	if cfg.BlobCacheDir != "" {
		args = append(args, "-blob-dir", cfg.BlobCacheDir)
	}
	cmd := exec.CommandContext(ctx, exe, args...)
	cmd.Stdout, cmd.Stderr = io.Discard, io.Discard
	if err := cmd.Start(); err != nil {
		return nil, err
	}
	ch := make(chan error, 1)
	go func() { ch <- cmd.Wait() }()
	return ch, nil
}

// ClientProcMain is the process entry point behind SpawnProcess: it
// parses the _client flags and runs the volunteer daemon until the
// process is killed or the server detaches it (which exits cleanly).
func ClientProcMain(args []string) error {
	fs := flag.NewFlagSet("_client", flag.ContinueOnError)
	server := fs.String("server", "", "project server base URL")
	id := fs.String("id", "client", "client identifier")
	slots := fs.Int("slots", 1, "simultaneous subtasks")
	poll := fs.Duration("poll", 25*time.Millisecond, "idle poll interval")
	blobs := fs.Bool("blobs", false, "fetch digest-published inputs via /blob/{digest}")
	blobDir := fs.String("blob-dir", "", "disk-backed blob cache directory (implies -blobs)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *server == "" {
		return fmt.Errorf("missing -server")
	}
	_, err := RunClient(context.Background(), ClientConfig{
		ID:           *id,
		ServerURL:    *server,
		Slots:        *slots,
		Poll:         *poll,
		Blobs:        *blobs,
		BlobCacheDir: *blobDir,
	})
	if errors.Is(err, boinc.ErrDetached) {
		return nil
	}
	return err
}
