package baseline

import (
	"fmt"

	"vcdl/internal/opt"
)

// UpdateRule abstracts the server-side parameter merge so the simulator
// can swap VC-ASGD for the alternative schemes the paper discusses and
// rejects for VC environments (§III-C). All rules operate on flat
// parameter vectors.
type UpdateRule interface {
	// Name identifies the rule in reports.
	Name() string
	// Synchronous reports whether the rule needs all subtask results of
	// an epoch before merging (EASGD-style); asynchronous rules merge
	// each result on arrival.
	Synchronous() bool
	// Merge folds one client result into server (in place). snapshot is
	// the parameter copy the client started from (the epoch snapshot).
	Merge(server, client, snapshot []float64, epoch int)
	// MergeAll folds a full epoch of results at once; only called when
	// Synchronous() is true.
	MergeAll(server []float64, clients [][]float64, snapshot []float64, epoch int)
}

// VCASGD is the paper's rule: Ws ← α·Ws + (1−α)·Wc per arriving result.
type VCASGD struct {
	Alpha opt.Schedule
}

// Name implements UpdateRule.
func (v VCASGD) Name() string { return fmt.Sprintf("vc-asgd(%s)", v.Alpha.Name()) }

// Synchronous implements UpdateRule.
func (VCASGD) Synchronous() bool { return false }

// Merge implements UpdateRule.
func (v VCASGD) Merge(server, client, snapshot []float64, epoch int) {
	a := v.Alpha.At(epoch)
	for i := range server {
		server[i] = a*server[i] + (1-a)*client[i]
	}
}

// MergeAll implements UpdateRule (unused; VC-ASGD is asynchronous).
func (v VCASGD) MergeAll(server []float64, clients [][]float64, snapshot []float64, epoch int) {
	for _, c := range clients {
		v.Merge(server, c, snapshot, epoch)
	}
}

// Downpour approximates Downpour SGD's gradient pushing: each client sends
// the delta it accumulated locally and the server adds it directly,
// Ws ← Ws + (Wc − Wsnapshot). With many subtasks per epoch the summed
// deltas overshoot — one reason the paper declines to use it as-is in a VC
// setting.
type Downpour struct {
	// Scale dampens the applied delta (1 = raw Downpour).
	Scale float64
}

// Name implements UpdateRule.
func (d Downpour) Name() string { return "downpour" }

// Synchronous implements UpdateRule.
func (Downpour) Synchronous() bool { return false }

// Merge implements UpdateRule.
func (d Downpour) Merge(server, client, snapshot []float64, epoch int) {
	s := d.Scale
	if s == 0 {
		s = 1
	}
	for i := range server {
		server[i] += s * (client[i] - snapshot[i])
	}
}

// MergeAll implements UpdateRule.
func (d Downpour) MergeAll(server []float64, clients [][]float64, snapshot []float64, epoch int) {
	for _, c := range clients {
		d.Merge(server, c, snapshot, epoch)
	}
}

// EASGD approximates elastic-averaging SGD's center update with moving
// rate β: once all nt results of a round are in,
// Ws ← Ws + β·Σ_i (Wc_i − Ws). It requires updates from all clients —
// the fault-tolerance problem the paper calls out: a single lost client
// stalls the round.
type EASGD struct {
	Beta float64
}

// Name implements UpdateRule.
func (e EASGD) Name() string { return fmt.Sprintf("easgd(beta=%g)", e.Beta) }

// Synchronous implements UpdateRule.
func (EASGD) Synchronous() bool { return true }

// Merge implements UpdateRule: EASGD cannot merge singletons; it treats an
// arriving result as a one-element round (used only if misconfigured).
func (e EASGD) Merge(server, client, snapshot []float64, epoch int) {
	e.MergeAll(server, [][]float64{client}, snapshot, epoch)
}

// MergeAll implements UpdateRule.
func (e EASGD) MergeAll(server []float64, clients [][]float64, snapshot []float64, epoch int) {
	if len(clients) == 0 {
		return
	}
	for i := range server {
		var force float64
		for _, c := range clients {
			force += c[i] - server[i]
		}
		server[i] += e.Beta * force
	}
}
