package baseline

import (
	"math"
	"testing"

	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
)

func testCorpus(t *testing.T) *data.Corpus {
	t.Helper()
	cfg := data.DefaultSynthConfig()
	cfg.NTrain, cfg.NVal, cfg.NTest = 400, 150, 150
	cfg.NoiseStd = 0.4
	c, err := data.GenerateSynth(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func testJob() core.JobConfig {
	cfg := core.DefaultJobConfig(nn.SmallCNNBuilder(3, 8, 8, 10))
	cfg.Subtasks = 8
	cfg.BatchSize = 25
	cfg.LearningRate = 0.01
	return cfg
}

func TestTrainSerialLearns(t *testing.T) {
	corpus := testCorpus(t)
	res, err := TrainSerial(testJob(), corpus, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.ValAcc) != 5 || len(res.TestAcc) != 5 || len(res.ValLoss) != 5 {
		t.Fatalf("curve lengths %d/%d/%d", len(res.ValAcc), len(res.TestAcc), len(res.ValLoss))
	}
	if res.ValAcc[4] < 0.5 {
		t.Fatalf("serial baseline failed to learn: %v", res.ValAcc)
	}
	if res.ValAcc[4] <= res.ValAcc[0] {
		t.Fatalf("no improvement: %v", res.ValAcc)
	}
	if len(res.FinalParams) == 0 {
		t.Fatal("no final params")
	}
	for _, v := range res.FinalParams {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatal("non-finite params")
		}
	}
}

func TestTrainSerialDeterministic(t *testing.T) {
	corpus := testCorpus(t)
	a, err := TrainSerial(testJob(), corpus, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := TrainSerial(testJob(), corpus, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.ValAcc {
		if a.ValAcc[i] != b.ValAcc[i] {
			t.Fatal("serial training not deterministic")
		}
	}
}

func TestTrainSerialInvalidConfig(t *testing.T) {
	corpus := testCorpus(t)
	cfg := testJob()
	cfg.BatchSize = 0
	if _, err := TrainSerial(cfg, corpus, 2); err == nil {
		t.Fatal("invalid config must error")
	}
}

func TestVCASGDRuleMatchesEquationOne(t *testing.T) {
	rule := VCASGD{Alpha: opt.Constant{V: 0.75}}
	if rule.Synchronous() {
		t.Fatal("VC-ASGD must be asynchronous")
	}
	server := []float64{4, 8}
	rule.Merge(server, []float64{0, 4}, nil, 1)
	if server[0] != 3 || server[1] != 7 {
		t.Fatalf("server = %v", server)
	}
}

func TestVCASGDVarSchedule(t *testing.T) {
	rule := VCASGD{Alpha: opt.EpochFraction{}}
	server := []float64{0}
	rule.Merge(server, []float64{10}, nil, 1) // α=0.5
	if server[0] != 5 {
		t.Fatalf("epoch 1: %v", server[0])
	}
}

func TestDownpourAddsDelta(t *testing.T) {
	rule := Downpour{}
	if rule.Synchronous() {
		t.Fatal("Downpour must be asynchronous")
	}
	server := []float64{10}
	rule.Merge(server, []float64{12}, []float64{11}, 1)
	// delta = 12-11 = 1 → server 11.
	if server[0] != 11 {
		t.Fatalf("server = %v", server[0])
	}
}

func TestDownpourScale(t *testing.T) {
	rule := Downpour{Scale: 0.5}
	server := []float64{0}
	rule.Merge(server, []float64{4}, []float64{0}, 1)
	if server[0] != 2 {
		t.Fatalf("server = %v", server[0])
	}
}

// TestDownpourOvershoot demonstrates the failure mode the paper cites: 50
// clients all pushing the same delta moves the server 50× too far.
func TestDownpourOvershoot(t *testing.T) {
	rule := Downpour{}
	server := []float64{0}
	snapshot := []float64{0}
	for i := 0; i < 50; i++ {
		rule.Merge(server, []float64{1}, snapshot, 1) // each client found optimum at 1
	}
	if server[0] != 50 {
		t.Fatalf("server = %v, want the 50x overshoot", server[0])
	}
}

func TestEASGDIsSynchronous(t *testing.T) {
	rule := EASGD{Beta: 0.01}
	if !rule.Synchronous() {
		t.Fatal("EASGD must be synchronous")
	}
}

func TestEASGDMergeAll(t *testing.T) {
	rule := EASGD{Beta: 0.1}
	server := []float64{0}
	clients := [][]float64{{1}, {2}, {3}}
	rule.MergeAll(server, clients, nil, 1)
	// force = (1-0)+(2-0)+(3-0) = 6 → server = 0.6.
	if math.Abs(server[0]-0.6) > 1e-12 {
		t.Fatalf("server = %v", server[0])
	}
}

func TestEASGDEmptyRound(t *testing.T) {
	rule := EASGD{Beta: 0.1}
	server := []float64{5}
	rule.MergeAll(server, nil, nil, 1)
	if server[0] != 5 {
		t.Fatal("empty round must be a no-op")
	}
}

func TestRuleNames(t *testing.T) {
	names := []string{
		VCASGD{Alpha: opt.Constant{V: 0.95}}.Name(),
		Downpour{}.Name(),
		EASGD{Beta: 0.001}.Name(),
	}
	for _, n := range names {
		if n == "" {
			t.Fatal("empty rule name")
		}
	}
}
