// Package baseline implements the comparison points of the paper's
// evaluation: single-instance serial synchronous training (the
// "best possible performance baseline" of Figure 6) and the alternative
// asynchronous parameter-update rules discussed in §II-B/§III-C
// (Downpour-style gradient pushing and EASGD-style elastic averaging),
// used by the ablation benchmarks.
package baseline

import (
	"math/rand"

	"vcdl/internal/core"
	"vcdl/internal/data"
	"vcdl/internal/nn"
	"vcdl/internal/opt"
)

// SerialResult is the outcome of a single-instance training run.
type SerialResult struct {
	// ValAcc and TestAcc hold per-epoch accuracies (index 0 = epoch 1).
	ValAcc, TestAcc []float64
	// ValLoss holds per-epoch validation losses.
	ValLoss []float64
	// FinalParams is the trained parameter vector.
	FinalParams []float64
}

// TrainSerial runs the paper's single-instance baseline: plain synchronous
// Adam over the full training set, evaluating validation and test accuracy
// after every epoch. It is deterministic for a given cfg.Seed.
func TrainSerial(cfg core.JobConfig, corpus *data.Corpus, epochs int) (*SerialResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if epochs < 1 {
		epochs = cfg.MaxEpochs
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	net := nn.NewNetwork(cfg.Builder)
	net.Init(rng)
	optimizer := opt.NewAdam(cfg.LearningRate)
	train := data.NewView(corpus.Train)

	res := &SerialResult{}
	for e := 1; e <= epochs; e++ {
		train.Shuffle(rng)
		for start := 0; start < train.N(); start += cfg.BatchSize {
			end := start + cfg.BatchSize
			if end > train.N() {
				end = train.N()
			}
			x, labels := train.Batch(start, end)
			net.ZeroGrads()
			net.TrainBatch(x, labels)
			optimizer.Step(net.ParamTensors(), net.GradTensors())
		}
		vLoss, vAcc := net.Evaluate(corpus.Val.X, corpus.Val.Labels, cfg.BatchSize*4)
		_, tAcc := net.Evaluate(corpus.Test.X, corpus.Test.Labels, cfg.BatchSize*4)
		res.ValLoss = append(res.ValLoss, vLoss)
		res.ValAcc = append(res.ValAcc, vAcc)
		res.TestAcc = append(res.TestAcc, tAcc)
	}
	res.FinalParams = net.Parameters()
	return res, nil
}
